//! Execution backends: where the low-level AddressLib calls of the
//! estimator run.
//!
//! The paper's evaluation keeps *"the top-level software layer of the
//! Global Motion Estimation Software … in the PC, which accessed the
//! ADM-XRCII board after every call to the AddressLib"* (§4.3). The
//! [`GmeBackend`] trait is exactly that AddressLib call boundary: the
//! estimator is backend-agnostic, and Table 3's call counts fall out of
//! the backend tallies.

use core::fmt;

use vip_core::accounting::CallDescriptor;
use vip_core::error::CoreResult;
use vip_core::frame::Frame;
use vip_core::ops::{InterOp, IntraOp};
use vip_engine::engine::AddressEngine;
use vip_engine::error::EngineError;
use vip_engine::EngineConfig;
use vip_profiling::instr::CostModel;
use vip_profiling::profile::software_call_seconds;

/// Call counters per addressing class — the Table 3 columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CallTally {
    /// Intra AddressLib calls issued.
    pub intra: u64,
    /// Inter AddressLib calls issued.
    pub inter: u64,
    /// Pixels processed by intra calls.
    pub intra_pixels: u64,
    /// Pixels processed by inter calls.
    pub inter_pixels: u64,
}

impl CallTally {
    /// Total calls.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.intra + self.inter
    }
}

impl fmt::Display for CallTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} intra + {} inter calls", self.intra, self.inter)
    }
}

/// The AddressLib dispatch boundary of the estimator.
pub trait GmeBackend {
    /// Runs an intra call.
    ///
    /// # Errors
    ///
    /// Returns an AddressLib error for invalid frames.
    fn intra(&mut self, frame: &Frame, op: &dyn IntraOp) -> CoreResult<Frame>;

    /// Runs an inter call.
    ///
    /// # Errors
    ///
    /// Returns an AddressLib error for mismatched or empty frames.
    fn inter(&mut self, a: &Frame, b: &Frame, op: &dyn InterOp) -> CoreResult<Frame>;

    /// Accumulated call counts.
    fn tally(&self) -> CallTally;

    /// Modelled wall-clock seconds this backend has consumed executing
    /// its calls (0 when the backend carries no timing model).
    fn modelled_seconds(&self) -> f64 {
        0.0
    }

    /// Modelled seconds the same calls would take on the paper's software
    /// platform (Pentium-M 1.6 GHz running the generic XM AddressLib) —
    /// the "Time in PM" column of Table 3, priced per call at its actual
    /// frame size.
    fn pm_modelled_seconds(&self) -> f64 {
        0.0
    }

    /// Short backend name for reports.
    fn name(&self) -> &'static str;
}

/// Pure software backend: the AddressLib running on the host CPU.
#[derive(Debug)]
pub struct SoftwareBackend {
    tally: CallTally,
    pm_seconds: f64,
    cost_model: CostModel,
}

impl SoftwareBackend {
    /// Creates a fresh software backend with the Pentium-M/XM cost
    /// model of the paper's Table 3.
    #[must_use]
    pub fn new() -> Self {
        SoftwareBackend {
            tally: CallTally::default(),
            pm_seconds: 0.0,
            cost_model: CostModel::pentium_m_xm(),
        }
    }

    /// A software backend with a custom cost model (ablations).
    #[must_use]
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        SoftwareBackend {
            tally: CallTally::default(),
            pm_seconds: 0.0,
            cost_model,
        }
    }

    fn price(&mut self, descriptor: &CallDescriptor, dims: vip_core::geometry::Dims) {
        self.pm_seconds += software_call_seconds(descriptor, dims, &self.cost_model);
    }
}

impl Default for SoftwareBackend {
    fn default() -> Self {
        SoftwareBackend::new()
    }
}

impl GmeBackend for SoftwareBackend {
    fn intra(&mut self, frame: &Frame, op: &dyn IntraOp) -> CoreResult<Frame> {
        let r = vip_core::addressing::intra::run_intra(frame, &op)?;
        self.tally.intra += 1;
        self.tally.intra_pixels += r.report.pixels_processed;
        self.price(&r.report.descriptor, frame.dims());
        Ok(r.output)
    }

    fn inter(&mut self, a: &Frame, b: &Frame, op: &dyn InterOp) -> CoreResult<Frame> {
        let r = vip_core::addressing::inter::run_inter(a, b, &op)?;
        self.tally.inter += 1;
        self.tally.inter_pixels += r.report.pixels_processed;
        self.price(&r.report.descriptor, a.dims());
        Ok(r.output)
    }

    fn tally(&self) -> CallTally {
        self.tally
    }

    fn modelled_seconds(&self) -> f64 {
        self.pm_seconds
    }

    fn pm_modelled_seconds(&self) -> f64 {
        self.pm_seconds
    }

    fn name(&self) -> &'static str {
        "software"
    }
}

/// Coprocessor backend: every AddressLib call dispatches to the simulated
/// AddressEngine, whose timing model accumulates the FPGA-side seconds.
#[derive(Debug)]
pub struct EngineBackend {
    engine: AddressEngine,
    pm_seconds: f64,
    cost_model: CostModel,
}

impl EngineBackend {
    /// Creates a backend around a fresh engine with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for invalid configurations.
    pub fn new(config: EngineConfig) -> Result<Self, EngineError> {
        Ok(EngineBackend {
            engine: AddressEngine::new(config)?,
            pm_seconds: 0.0,
            cost_model: CostModel::pentium_m_xm(),
        })
    }

    /// The prototype-configured backend.
    ///
    /// # Panics
    ///
    /// Never panics: the prototype configuration is valid by
    /// construction.
    #[must_use]
    pub fn prototype() -> Self {
        EngineBackend::new(EngineConfig::prototype()).expect("prototype config is valid")
    }

    /// Access to the underlying engine (reports, stats).
    #[must_use]
    pub fn engine(&self) -> &AddressEngine {
        &self.engine
    }

    /// Mutable access to the underlying engine — for attaching an
    /// observability recorder or a stage-trace limit before a run.
    pub fn engine_mut(&mut self) -> &mut AddressEngine {
        &mut self.engine
    }
}

impl GmeBackend for EngineBackend {
    fn intra(&mut self, frame: &Frame, op: &dyn IntraOp) -> CoreResult<Frame> {
        match self.engine.run_intra(frame, &op) {
            Ok(run) => {
                self.pm_seconds +=
                    software_call_seconds(&run.report.descriptor, frame.dims(), &self.cost_model);
                Ok(run.output)
            }
            Err(EngineError::Core(e)) => Err(e),
            Err(other) => Err(vip_core::error::CoreError::InvalidParameter {
                name: "engine",
                reason: engine_reason(&other),
            }),
        }
    }

    fn inter(&mut self, a: &Frame, b: &Frame, op: &dyn InterOp) -> CoreResult<Frame> {
        match self.engine.run_inter(a, b, &op) {
            Ok(run) => {
                self.pm_seconds +=
                    software_call_seconds(&run.report.descriptor, a.dims(), &self.cost_model);
                Ok(run.output)
            }
            Err(EngineError::Core(e)) => Err(e),
            Err(other) => Err(vip_core::error::CoreError::InvalidParameter {
                name: "engine",
                reason: engine_reason(&other),
            }),
        }
    }

    fn tally(&self) -> CallTally {
        let s = self.engine.stats();
        CallTally {
            intra: s.intra_calls,
            inter: s.inter_calls,
            // The engine does not track per-class pixels; derive from
            // hardware accesses (2 per pixel across all calls).
            intra_pixels: 0,
            inter_pixels: 0,
        }
    }

    fn modelled_seconds(&self) -> f64 {
        self.engine.stats().busy_seconds
    }

    fn pm_modelled_seconds(&self) -> f64 {
        self.pm_seconds
    }

    fn name(&self) -> &'static str {
        "address-engine"
    }
}

fn engine_reason(err: &EngineError) -> &'static str {
    match err {
        EngineError::FrameTooLarge { .. } => "frame exceeds the engine's ZBT capacity",
        EngineError::UnsupportedCapability { .. } => "engine capability not enabled",
        _ => "engine rejected the call",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Dims;
    use vip_core::ops::arith::AbsDiff;
    use vip_core::ops::filter::BoxBlur;
    use vip_core::pixel::Pixel;

    fn frame() -> Frame {
        Frame::from_fn(Dims::new(24, 16), |p| {
            Pixel::from_luma(((p.x * 9 + p.y * 5) % 256) as u8)
        })
    }

    #[test]
    fn software_backend_counts_calls() {
        let mut b = SoftwareBackend::new();
        let f = frame();
        b.intra(&f, &BoxBlur::con8()).unwrap();
        b.intra(&f, &BoxBlur::con8()).unwrap();
        b.inter(&f, &f, &AbsDiff::luma()).unwrap();
        let t = b.tally();
        assert_eq!((t.intra, t.inter), (2, 1));
        assert_eq!(t.intra_pixels, 2 * 384);
        assert_eq!(t.total(), 3);
        assert!(b.modelled_seconds() > 0.0, "PM cost model accumulates");
        assert_eq!(b.modelled_seconds(), b.pm_modelled_seconds());
        assert_eq!(b.name(), "software");
    }

    #[test]
    fn engine_backend_counts_and_times() {
        let mut b = EngineBackend::prototype();
        let f = frame();
        b.intra(&f, &BoxBlur::con8()).unwrap();
        b.inter(&f, &f, &AbsDiff::luma()).unwrap();
        let t = b.tally();
        assert_eq!((t.intra, t.inter), (1, 1));
        assert!(b.modelled_seconds() > 0.0);
        assert!(
            b.pm_modelled_seconds() > b.modelled_seconds(),
            "the same calls are slower on the PM software model"
        );
        assert_eq!(b.name(), "address-engine");
        assert_eq!(b.engine().stats().total_calls(), 2);
    }

    #[test]
    fn backends_produce_identical_pixels() {
        let mut sw = SoftwareBackend::new();
        let mut hw = EngineBackend::prototype();
        let f = frame();
        let a = sw.intra(&f, &BoxBlur::con8()).unwrap();
        let b = hw.intra(&f, &BoxBlur::con8()).unwrap();
        assert_eq!(a, b);
        let c = sw.inter(&f, &a, &AbsDiff::luma()).unwrap();
        let d = hw.inter(&f, &a, &AbsDiff::luma()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn backend_as_trait_object() {
        let mut backends: Vec<Box<dyn GmeBackend>> =
            vec![Box::new(SoftwareBackend::new()), Box::new(EngineBackend::prototype())];
        let f = frame();
        for b in &mut backends {
            b.intra(&f, &BoxBlur::con8()).unwrap();
            assert_eq!(b.tally().intra, 1, "{}", b.name());
        }
    }

    #[test]
    fn engine_errors_surface_as_core_errors() {
        let mut b = EngineBackend::prototype();
        let big = Frame::new(Dims::new(1024, 1024));
        assert!(b.intra(&big, &BoxBlur::con8()).is_err());
        let empty = Frame::new(Dims::new(0, 0));
        assert!(b.intra(&empty, &BoxBlur::con8()).is_err());
    }
}
