//! Property-based tests of the motion-model algebra and the warp/estimate
//! consistency invariants.

// Property tests need the external `proptest` crate, unavailable in
// this offline workspace; the (empty) feature keeps the cfg name valid.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::pixel::Pixel;
use vip_gme::model::{solve_linear, Motion};
use vip_gme::warp::{sample_bilinear, warp_frame};

/// Well-conditioned similarity-ish motions (invertible by construction).
fn arb_motion() -> impl Strategy<Value = Motion> {
    (
        0.8f64..1.25,
        -0.3f64..0.3,
        -8.0f64..8.0,
        -8.0f64..8.0,
    )
        .prop_map(|(zoom, rot, dx, dy)| Motion::similarity(zoom, rot, dx, dy))
}

fn arb_point() -> impl Strategy<Value = (f64, f64)> {
    (-60.0f64..60.0, -60.0f64..60.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compose_is_associative(a in arb_motion(), b in arb_motion(), c in arb_motion(),
                              (x, y) in arb_point()) {
        let left = a.compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        let (lx, ly) = left.apply(x, y);
        let (rx, ry) = right.apply(x, y);
        prop_assert!((lx - rx).abs() < 1e-6, "{} vs {}", lx, rx);
        prop_assert!((ly - ry).abs() < 1e-6);
    }

    #[test]
    fn identity_is_neutral(m in arb_motion(), (x, y) in arb_point()) {
        let id = Motion::identity();
        for composed in [m.compose(&id), id.compose(&m)] {
            let (ax, ay) = composed.apply(x, y);
            let (bx, by) = m.apply(x, y);
            prop_assert!((ax - bx).abs() < 1e-9);
            prop_assert!((ay - by).abs() < 1e-9);
        }
    }

    #[test]
    fn inverse_undoes(m in arb_motion(), (x, y) in arb_point()) {
        let inv = m.inverse().expect("similarities are invertible");
        let (fx, fy) = m.apply(x, y);
        let (bx, by) = inv.apply(fx, fy);
        prop_assert!((bx - x).abs() < 1e-6, "{} vs {}", bx, x);
        prop_assert!((by - y).abs() < 1e-6);
        // And the composition is the identity in displacement terms.
        let round = inv.compose(&m);
        prop_assert!(round.displacement_error(&Motion::identity(), 100.0, 100.0) < 1e-6);
    }

    #[test]
    fn pyramid_scaling_commutes_with_apply(m in arb_motion(), (x, y) in arb_point(),
                                           factor in 1.5f64..4.0) {
        let down = m.scaled_down(factor);
        let (fx, fy) = m.apply(x, y);
        let (dx, dy) = down.apply(x / factor, y / factor);
        prop_assert!((fx / factor - dx).abs() < 1e-9);
        prop_assert!((fy / factor - dy).abs() < 1e-9);
    }

    #[test]
    fn displacement_error_is_a_metric_ish(a in arb_motion(), b in arb_motion()) {
        let w = 80.0;
        let h = 60.0;
        prop_assert!(a.displacement_error(&a, w, h) < 1e-9);
        let ab = a.displacement_error(&b, w, h);
        let ba = b.displacement_error(&a, w, h);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn solve_linear_recovers_solution(
        coeffs in proptest::collection::vec(-3.0f64..3.0, 9),
        x0 in -5.0f64..5.0, x1 in -5.0f64..5.0, x2 in -5.0f64..5.0,
    ) {
        // Build a diagonally dominant 3×3 system (always solvable).
        let mut a: Vec<Vec<f64>> = (0..3)
            .map(|i| (0..3).map(|j| coeffs[i * 3 + j]).collect())
            .collect();
        for (i, row) in a.iter_mut().enumerate() {
            row[i] += 10.0;
        }
        let x = [x0, x1, x2];
        let mut b: Vec<f64> = (0..3)
            .map(|i| (0..3).map(|j| a[i][j] * x[j]).sum())
            .collect();
        let solved = solve_linear(&mut a, &mut b).expect("diagonally dominant");
        for (s, e) in solved.iter().zip(&x) {
            prop_assert!((s - e).abs() < 1e-6, "{} vs {}", s, e);
        }
    }

    #[test]
    fn bilinear_interpolation_is_bounded(seed in 0u8..255, x in 0.0f64..15.0, y in 0.0f64..15.0) {
        let f = Frame::from_fn(Dims::new(16, 16), |p| {
            Pixel::from_luma(((p.x * 31 + p.y * 17 + i32::from(seed)) % 256) as u8)
        });
        if let Some(v) = sample_bilinear(&f, x, y) {
            prop_assert!((0.0..=255.0).contains(&v));
        }
    }

    #[test]
    fn warp_identity_is_exact(seed in 0u8..255) {
        let f = Frame::from_fn(Dims::new(20, 14), |p| {
            Pixel::from_luma(((p.x * 13 + p.y * 7 + i32::from(seed)) % 256) as u8)
        });
        let w = warp_frame(&f, &Motion::identity());
        prop_assert_eq!(w.valid, 280);
        for (p, px) in w.frame.enumerate() {
            prop_assert_eq!(px.y, f.get(p).y);
        }
    }

    #[test]
    fn warp_coverage_decreases_with_translation(mag in 0.0f64..10.0) {
        let f = Frame::from_fn(Dims::new(32, 32), |p| Pixel::from_luma(p.x as u8));
        let near = warp_frame(&f, &Motion::translation(mag, 0.0));
        let far = warp_frame(&f, &Motion::translation(mag + 5.0, 0.0));
        prop_assert!(far.valid <= near.valid);
    }
}
