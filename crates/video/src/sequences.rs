//! The four synthetic test sequences standing in for the paper's MPEG-1
//! clips (Table 3: Singapore, Dome, Pisa, Movie).
//!
//! Each sequence couples a procedural [`Scene`] with a ground-truth
//! [`MotionScript`]; frames are rendered by sampling the scene through
//! the per-frame camera pose. Lengths are chosen so the AddressLib call
//! counts reproduce the paper's ordering (Pisa ≈ 2× the others).
//!
//! # Examples
//!
//! ```
//! use vip_video::sequences::TestSequence;
//!
//! let seq = TestSequence::singapore().scaled(44, 36, 5);
//! let f0 = seq.render_frame(0);
//! assert_eq!(f0.width(), 44);
//! ```

use vip_core::frame::Frame;
use vip_core::geometry::{Dims, ImageFormat};
use vip_core::pixel::Pixel;

use crate::motion_script::{CameraPose, MotionScript, Segment};
use crate::synth::{Scene, SceneKind};

/// A named synthetic sequence with ground-truth global motion.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSequence {
    name: &'static str,
    scene: Scene,
    script: MotionScript,
    dims: Dims,
}

impl TestSequence {
    /// The "Singapore" stand-in: a steady skyline pan with a gentle zoom.
    #[must_use]
    pub fn singapore() -> Self {
        TestSequence {
            name: "singapore",
            scene: Scene::new(SceneKind::Skyline, 0x5117),
            script: MotionScript::new(vec![
                Segment::pan(150, 1.8, 0.05),
                Segment::pan_zoom(120, 1.4, 0.0, 1.0008),
                Segment::pan(110, 2.0, -0.1),
            ]),
            dims: ImageFormat::Cif.dims(),
        }
    }

    /// The "Dome" stand-in: slow rotation around the dome plus drift.
    #[must_use]
    pub fn dome() -> Self {
        TestSequence {
            name: "dome",
            scene: Scene::new(SceneKind::Dome, 0xD03E),
            script: MotionScript::new(vec![
                Segment::pan_rotate(140, 0.6, 0.4, 0.0015),
                Segment::pan_rotate(140, -0.4, 0.6, 0.0020),
                Segment::pan_zoom(130, 0.5, -0.3, 0.9995),
            ]),
            dims: ImageFormat::Cif.dims(),
        }
    }

    /// The "Pisa" stand-in: the long clip — a slow plaza traverse with
    /// direction changes (about twice the work of the others, as in
    /// Table 3).
    #[must_use]
    pub fn pisa() -> Self {
        TestSequence {
            name: "pisa",
            scene: Scene::new(SceneKind::Plaza, 0x9154),
            script: MotionScript::new(vec![
                Segment::pan(200, 1.2, 0.7),
                Segment::pan_zoom(180, 0.9, 0.9, 1.0005),
                Segment::pan(200, 1.5, -0.4),
                Segment::pan_rotate(200, 0.8, -0.8, 0.0008),
            ]),
            dims: ImageFormat::Cif.dims(),
        }
    }

    /// The "Movie" stand-in: film-like content with a pan that reverses
    /// and a zoom-out.
    #[must_use]
    pub fn movie() -> Self {
        TestSequence {
            name: "movie",
            scene: Scene::new(SceneKind::Film, 0x0F11),
            script: MotionScript::new(vec![
                Segment::pan(120, 2.2, 0.0),
                Segment::pan_zoom(110, -1.6, 0.3, 0.9992),
                Segment::pan(110, -2.0, -0.2),
            ]),
            dims: ImageFormat::Cif.dims(),
        }
    }

    /// All four Table 3 sequences in paper order.
    #[must_use]
    pub fn table3() -> Vec<TestSequence> {
        vec![
            TestSequence::singapore(),
            TestSequence::dome(),
            TestSequence::pisa(),
            TestSequence::movie(),
        ]
    }

    /// A scaled copy: `width × height` frames and at most `frames`
    /// frames — for fast tests and demos.
    ///
    /// # Panics
    ///
    /// Panics when `frames` is zero.
    #[must_use]
    pub fn scaled(&self, width: usize, height: usize, frames: usize) -> TestSequence {
        assert!(frames > 0, "a sequence needs at least one frame");
        // Re-integrate a truncated script by sampling the existing poses.
        let poses: Vec<CameraPose> = (0..frames.min(self.script.frame_count()))
            .map(|t| self.script.pose(t))
            .collect();
        TestSequence {
            name: self.name,
            scene: self.scene,
            script: MotionScript::from_poses(poses),
            dims: Dims::new(width, height),
        }
    }

    /// Sequence name (Table 3 row label).
    #[must_use]
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Frame dimensions.
    #[must_use]
    pub const fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.script.frame_count()
    }

    /// The ground-truth motion script.
    #[must_use]
    pub const fn script(&self) -> &MotionScript {
        &self.script
    }

    /// The underlying scene.
    #[must_use]
    pub const fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Renders frame `t` by sampling the scene through the camera pose.
    #[must_use]
    pub fn render_frame(&self, t: usize) -> Frame {
        let pose = self.script.pose(t);
        // Centre the camera window on the pose.
        let cx = self.dims.width as f64 / 2.0;
        let cy = self.dims.height as f64 / 2.0;
        Frame::from_fn(self.dims, |p| {
            let (wx, wy) = pose.to_world(p.x as f64 - cx, p.y as f64 - cy);
            let (y, u, v) = self.scene.sample(wx + 400.0, wy + 300.0);
            Pixel::from_yuv(y.round() as u8, u.round() as u8, v.round() as u8)
        })
    }

    /// Iterates over all frames.
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.frame_count()).map(|t| self.render_frame(t))
    }
}

impl MotionScript {
    /// Rebuilds a script from explicit poses (used by
    /// [`TestSequence::scaled`]).
    ///
    /// # Panics
    ///
    /// Panics when `poses` is empty.
    #[must_use]
    pub fn from_poses(poses: Vec<CameraPose>) -> MotionScript {
        assert!(!poses.is_empty(), "motion script needs at least one frame");
        // Construct via a dummy script and replace the poses to keep the
        // field private.
        let mut script = MotionScript::new(vec![Segment::pan(poses.len().max(1), 0.0, 0.0)]);
        script.set_poses(poses);
        script
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::ops::reduce::LumaStats;

    #[test]
    fn four_sequences_with_paper_ordering() {
        let seqs = TestSequence::table3();
        assert_eq!(seqs.len(), 4);
        let names: Vec<_> = seqs.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["singapore", "dome", "pisa", "movie"]);
        // Pisa is the long one: roughly twice the others (Table 3).
        let pisa = seqs[2].frame_count() as f64;
        for (i, s) in seqs.iter().enumerate() {
            if i != 2 {
                let ratio = pisa / s.frame_count() as f64;
                assert!(ratio > 1.7 && ratio < 2.5, "{}: {ratio}", s.name());
            }
        }
    }

    #[test]
    fn sequences_are_cif() {
        for s in TestSequence::table3() {
            assert_eq!(s.dims(), Dims::new(352, 288));
            assert!(s.frame_count() > 300);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let s = TestSequence::movie().scaled(32, 24, 3);
        assert_eq!(s.render_frame(1), s.render_frame(1));
    }

    #[test]
    fn frames_have_texture() {
        for seq in TestSequence::table3() {
            let small = seq.scaled(44, 36, 2);
            let f = small.render_frame(0);
            let stats = LumaStats::of(&f).unwrap();
            assert!(stats.variance > 50.0, "{} too flat", seq.name());
        }
    }

    #[test]
    fn consecutive_frames_differ_but_overlap() {
        let seq = TestSequence::singapore().scaled(64, 48, 4);
        let f0 = seq.render_frame(0);
        let f1 = seq.render_frame(1);
        let sad = f0.luma_sad(&f1).unwrap();
        assert!(sad > 0, "motion must change the frame");
        // Small per-frame motion: mean abs diff well below full range.
        let mean = sad as f64 / f0.pixel_count() as f64;
        assert!(mean < 40.0, "mean abs diff {mean} too large for GME");
    }

    #[test]
    fn ground_truth_consistent_with_rendering() {
        // The ground-truth relative pose maps frame-t coordinates to
        // frame-(t+1) coordinates: content must match at mapped points.
        let seq = TestSequence::pisa().scaled(64, 48, 3);
        let f0 = seq.render_frame(0);
        let f1 = seq.render_frame(1);
        let gt = seq.script().ground_truth(0);
        let cx = 32.0;
        let cy = 24.0;
        let mut total_err = 0.0;
        let mut n = 0;
        for (x, y) in [(20, 20), (30, 25), (40, 30), (25, 15)] {
            let (nx, ny) = gt.to_world(x as f64 - cx, y as f64 - cy);
            let (ix, iy) = ((nx + cx).round() as i32, (ny + cy).round() as i32);
            if ix >= 1 && iy >= 1 && ix < 63 && iy < 47 {
                let a = f0.get(vip_core::geometry::Point::new(x, y)).y as f64;
                let b = f1.get(vip_core::geometry::Point::new(ix, iy)).y as f64;
                total_err += (a - b).abs();
                n += 1;
            }
        }
        assert!(n >= 2, "need interior correspondences");
        assert!(total_err / n as f64 <= 32.0, "mean warp error {}", total_err / n as f64);
    }

    #[test]
    fn scaled_truncates() {
        let s = TestSequence::dome().scaled(20, 20, 7);
        assert_eq!(s.frame_count(), 7);
        assert_eq!(s.dims(), Dims::new(20, 20));
        assert_eq!(s.name(), "dome");
        assert_eq!(s.frames().count(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_panics() {
        let _ = TestSequence::movie().scaled(8, 8, 0);
    }
}
