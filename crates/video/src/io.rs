//! Minimal image and video I/O: binary PGM/PPM stills and Y4M (YUV4MPEG2)
//! streams, enough to inspect synthetic sequences and mosaics.
//!
//! # Examples
//!
//! ```no_run
//! use vip_core::frame::Frame;
//! use vip_core::geometry::Dims;
//! use vip_video::io::write_pgm;
//!
//! let frame = Frame::new(Dims::new(8, 8));
//! write_pgm(&frame, "out.pgm")?;
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::Path;

use vip_core::frame::Frame;
use vip_core::geometry::Dims;
use vip_core::pixel::Pixel;

/// Writes the luminance plane as a binary PGM (P5).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_pgm(frame: &Frame, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P5\n{} {}\n255\n", frame.width(), frame.height())?;
    w.write_all(&frame.luma_plane())?;
    w.flush()
}

/// Writes the frame as a binary PPM (P6) using a BT.601 YUV→RGB
/// conversion.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_ppm(frame: &Frame, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{} {}\n255\n", frame.width(), frame.height())?;
    let mut buf = Vec::with_capacity(frame.pixel_count() * 3);
    for p in frame.pixels() {
        let (r, g, b) = yuv_to_rgb(p.y, p.u, p.v);
        buf.extend_from_slice(&[r, g, b]);
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads a binary PGM (P5) into a luminance-only frame.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for malformed headers or short
/// payloads, plus any underlying I/O error.
pub fn read_pgm(path: impl AsRef<Path>) -> io::Result<Frame> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse_pgm(&bytes)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn parse_pgm(bytes: &[u8]) -> io::Result<Frame> {
    let mut pos = 0usize;
    let mut token = || -> io::Result<String> {
        // Skip whitespace and comments.
        while pos < bytes.len() {
            if bytes[pos].is_ascii_whitespace() {
                pos += 1;
            } else if bytes[pos] == b'#' {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            } else {
                break;
            }
        }
        let start = pos;
        while pos < bytes.len() && !bytes[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(bad("unexpected end of pgm header"));
        }
        Ok(String::from_utf8_lossy(&bytes[start..pos]).into_owned())
    };

    if token()? != "P5" {
        return Err(bad("not a binary pgm (P5) file"));
    }
    let width: usize = token()?.parse().map_err(|_| bad("bad width"))?;
    let height: usize = token()?.parse().map_err(|_| bad("bad height"))?;
    let maxval: usize = token()?.parse().map_err(|_| bad("bad maxval"))?;
    if maxval != 255 {
        return Err(bad("only 8-bit pgm supported"));
    }
    pos += 1; // single whitespace after maxval
    let need = width * height;
    if bytes.len() < pos + need {
        return Err(bad("pgm payload truncated"));
    }
    Frame::from_luma(Dims::new(width, height), &bytes[pos..pos + need])
        .map_err(|_| bad("inconsistent pgm dimensions"))
}

/// A Y4M (YUV4MPEG2) stream writer in C444 format.
#[derive(Debug)]
pub struct Y4mWriter<W: Write> {
    sink: W,
    dims: Dims,
    frames_written: usize,
}

impl Y4mWriter<BufWriter<File>> {
    /// Creates a Y4M file at `path` for `dims` frames at `fps`.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn create(path: impl AsRef<Path>, dims: Dims, fps: u32) -> io::Result<Self> {
        Y4mWriter::new(BufWriter::new(File::create(path)?), dims, fps)
    }
}

impl<W: Write> Y4mWriter<W> {
    /// Wraps any writer (pass `&mut vec` or a file). A mutable reference
    /// to a writer also works.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error while writing the header.
    pub fn new(mut sink: W, dims: Dims, fps: u32) -> io::Result<Self> {
        writeln!(
            sink,
            "YUV4MPEG2 W{} H{} F{}:1 Ip A1:1 C444",
            dims.width, dims.height, fps
        )?;
        Ok(Y4mWriter {
            sink,
            dims,
            frames_written: 0,
        })
    }

    /// Appends one frame.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidInput`] when the frame size does
    /// not match the stream, plus any underlying I/O error.
    pub fn write_frame(&mut self, frame: &Frame) -> io::Result<()> {
        if frame.dims() != self.dims {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame dimensions do not match the stream",
            ));
        }
        writeln!(self.sink, "FRAME")?;
        for plane in [|p: &Pixel| p.y, |p: &Pixel| p.u, |p: &Pixel| p.v] {
            let buf: Vec<u8> = frame.pixels().iter().map(plane).collect();
            self.sink.write_all(&buf)?;
        }
        self.frames_written += 1;
        Ok(())
    }

    /// Frames written so far.
    #[must_use]
    pub const fn frames_written(&self) -> usize {
        self.frames_written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error from the flush.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Reads a C444 Y4M (YUV4MPEG2) stream produced by [`Y4mWriter`] back
/// into frames.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for malformed headers, frame
/// markers or short payloads, plus any underlying I/O error.
pub fn read_y4m(path: impl AsRef<Path>) -> io::Result<Vec<Frame>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    parse_y4m(&bytes)
}

fn parse_y4m(bytes: &[u8]) -> io::Result<Vec<Frame>> {
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| bad("missing y4m header terminator"))?;
    let header = String::from_utf8_lossy(&bytes[..header_end]);
    if !header.starts_with("YUV4MPEG2") {
        return Err(bad("not a yuv4mpeg2 stream"));
    }
    let mut width = 0usize;
    let mut height = 0usize;
    let mut c444 = false;
    for tok in header.split_whitespace().skip(1) {
        match tok.split_at(1) {
            ("W", v) => width = v.parse().map_err(|_| bad("bad y4m width"))?,
            ("H", v) => height = v.parse().map_err(|_| bad("bad y4m height"))?,
            ("C", v) => c444 = v == "444",
            _ => {}
        }
    }
    if width == 0 || height == 0 {
        return Err(bad("y4m header lacks dimensions"));
    }
    if !c444 {
        return Err(bad("only C444 y4m streams supported"));
    }
    let dims = Dims::new(width, height);
    let plane = width * height;
    let mut frames = Vec::new();
    let mut pos = header_end + 1;
    while pos < bytes.len() {
        // FRAME marker line (parameters ignored).
        let line_end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| bad("missing frame marker terminator"))?
            + pos;
        if !bytes[pos..line_end].starts_with(b"FRAME") {
            return Err(bad("expected FRAME marker"));
        }
        pos = line_end + 1;
        if bytes.len() < pos + 3 * plane {
            return Err(bad("y4m frame payload truncated"));
        }
        let (ys, rest) = bytes[pos..pos + 3 * plane].split_at(plane);
        let (us, vs) = rest.split_at(plane);
        let mut pixels = Vec::with_capacity(plane);
        for i in 0..plane {
            pixels.push(Pixel::from_yuv(ys[i], us[i], vs[i]));
        }
        frames.push(
            Frame::from_pixels(dims, pixels)
                .map_err(|_| bad("inconsistent y4m dimensions"))?,
        );
        pos += 3 * plane;
    }
    Ok(frames)
}

/// BT.601 full-range YUV → RGB.
fn yuv_to_rgb(y: u8, u: u8, v: u8) -> (u8, u8, u8) {
    let y = f64::from(y);
    let u = f64::from(u) - 128.0;
    let v = f64::from(v) - 128.0;
    let r = y + 1.402 * v;
    let g = y - 0.344_136 * u - 0.714_136 * v;
    let b = y + 1.772 * u;
    (
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::geometry::Point;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("vip_video_io_{}_{name}", std::process::id()));
        p
    }

    fn ramp(dims: Dims) -> Frame {
        Frame::from_fn(dims, |p| {
            Pixel::from_yuv((p.x * 10) as u8, 100 + p.y as u8, 200)
        })
    }

    #[test]
    fn pgm_roundtrip() {
        let path = tmp("roundtrip.pgm");
        let f = ramp(Dims::new(6, 4));
        write_pgm(&f, &path).unwrap();
        let g = read_pgm(&path).unwrap();
        assert_eq!(g.dims(), f.dims());
        assert_eq!(g.luma_plane(), f.luma_plane());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn pgm_parse_with_comment() {
        let mut bytes = b"P5\n# a comment\n2 2\n255\n".to_vec();
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let f = parse_pgm(&bytes).unwrap();
        assert_eq!(f.get(Point::new(1, 1)).y, 4);
    }

    #[test]
    fn pgm_rejects_malformed() {
        assert!(parse_pgm(b"P6\n2 2\n255\n....").is_err());
        assert!(parse_pgm(b"P5\n2 2\n65535\n").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\n\x01\x02").is_err(), "truncated payload");
        assert!(parse_pgm(b"P5\nx 2\n255\n").is_err());
        assert!(parse_pgm(b"").is_err());
    }

    #[test]
    fn ppm_writes_expected_size() {
        let path = tmp("rgb.ppm");
        let f = ramp(Dims::new(5, 3));
        write_ppm(&f, &path).unwrap();
        let len = std::fs::metadata(&path).unwrap().len() as usize;
        assert!(len >= 5 * 3 * 3 + 10);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn y4m_stream_structure() {
        let mut buf = Vec::new();
        {
            let mut w = Y4mWriter::new(&mut buf, Dims::new(4, 2), 25).unwrap();
            let f = ramp(Dims::new(4, 2));
            w.write_frame(&f).unwrap();
            w.write_frame(&f).unwrap();
            assert_eq!(w.frames_written(), 2);
            w.into_inner().unwrap();
        }
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("YUV4MPEG2 W4 H2 F25:1"));
        assert_eq!(text.matches("FRAME").count(), 2);
        // Header + 2 × (6 + 3 planes × 8 bytes).
        assert!(buf.len() > 2 * (6 + 3 * 8));
    }

    #[test]
    fn y4m_rejects_mismatched_frames() {
        let mut buf = Vec::new();
        let mut w = Y4mWriter::new(&mut buf, Dims::new(4, 2), 25).unwrap();
        let wrong = ramp(Dims::new(2, 2));
        assert!(w.write_frame(&wrong).is_err());
    }

    #[test]
    fn y4m_roundtrip() {
        let path = tmp("roundtrip.y4m");
        let frames: Vec<Frame> = (0..3)
            .map(|t| {
                Frame::from_fn(Dims::new(6, 4), |p| {
                    Pixel::from_yuv((p.x * 10 + t) as u8, 100, 200)
                })
            })
            .collect();
        {
            let mut w = Y4mWriter::create(&path, Dims::new(6, 4), 25).unwrap();
            for f in &frames {
                w.write_frame(f).unwrap();
            }
            w.into_inner().unwrap();
        }
        let back = read_y4m(&path).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in frames.iter().zip(&back) {
            // Side channels are not carried by Y4M; compare video planes.
            assert_eq!(a.luma_plane(), b.luma_plane());
            assert_eq!(a.channel_plane(vip_core::pixel::Channel::U),
                       b.channel_plane(vip_core::pixel::Channel::U));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn y4m_parser_rejects_malformed() {
        assert!(parse_y4m(b"not a stream\n").is_err());
        assert!(parse_y4m(b"YUV4MPEG2 W0 H2 C444\n").is_err());
        assert!(parse_y4m(b"YUV4MPEG2 W2 H2 C420\n").is_err());
        assert!(parse_y4m(b"YUV4MPEG2 W2 H2 C444\nFRAME\nxx").is_err(), "truncated");
        assert!(parse_y4m(b"YUV4MPEG2 W2 H2 C444\nBOGUS\n").is_err());
        assert!(parse_y4m(b"YUV4MPEG2").is_err(), "no newline");
    }

    #[test]
    fn yuv_to_rgb_grey_is_grey() {
        let (r, g, b) = yuv_to_rgb(100, 128, 128);
        assert_eq!((r, g, b), (100, 100, 100));
        let (r, _, _) = yuv_to_rgb(100, 128, 255);
        assert!(r > 100, "positive V pushes red up");
    }
}
