//! Sequence degradations: sensor noise and independently moving
//! foreground objects.
//!
//! The paper's clips are real camera footage — noisy, and containing
//! foreground motion that a *global* motion estimator must treat as
//! outliers. This module injects both effects into the clean synthetic
//! sequences so robustness can be measured against ground truth.
//!
//! # Examples
//!
//! ```
//! use vip_video::degrade::{Degradation, ForegroundObject};
//! use vip_video::TestSequence;
//!
//! let seq = TestSequence::movie().scaled(64, 48, 4);
//! let noisy = Degradation::new(7)
//!     .with_noise(3.0)
//!     .with_object(ForegroundObject::walker(10, 10, 1.5, 0.0, 8));
//! let f = noisy.apply(&seq, 2);
//! assert_eq!(f.dims(), seq.render_frame(2).dims());
//! ```

use crate::rng::XorShift64;
use vip_core::frame::Frame;
use vip_core::geometry::Point;
use crate::sequences::TestSequence;

/// An independently moving foreground object (a bright rounded blob).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForegroundObject {
    /// Initial centre x.
    pub x0: f64,
    /// Initial centre y.
    pub y0: f64,
    /// Velocity per frame (frame coordinates).
    pub vx: f64,
    /// Velocity per frame.
    pub vy: f64,
    /// Radius in pixels.
    pub radius: f64,
    /// Object luminance.
    pub luma: u8,
}

impl ForegroundObject {
    /// A "pedestrian": a small bright blob walking across the frame.
    #[must_use]
    pub fn walker(x0: i32, y0: i32, vx: f64, vy: f64, radius: u32) -> Self {
        ForegroundObject {
            x0: f64::from(x0),
            y0: f64::from(y0),
            vx,
            vy,
            radius: f64::from(radius),
            luma: 235,
        }
    }

    /// Centre position at frame `t`.
    #[must_use]
    pub fn centre_at(&self, t: usize) -> (f64, f64) {
        (self.x0 + self.vx * t as f64, self.y0 + self.vy * t as f64)
    }

    fn covers(&self, t: usize, p: Point) -> bool {
        let (cx, cy) = self.centre_at(t);
        let dx = f64::from(p.x) - cx;
        let dy = f64::from(p.y) - cy;
        dx * dx + dy * dy <= self.radius * self.radius
    }
}

/// A degradation pipeline over a clean [`TestSequence`].
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    seed: u64,
    noise_sigma: f64,
    objects: Vec<ForegroundObject>,
}

impl Degradation {
    /// Creates an empty degradation (identity) with a noise seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Degradation {
            seed,
            noise_sigma: 0.0,
            objects: Vec::new(),
        }
    }

    /// Adds zero-mean Gaussian-ish luminance noise of the given standard
    /// deviation (approximated by the sum of three uniforms).
    #[must_use]
    pub fn with_noise(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma.max(0.0);
        self
    }

    /// Adds a foreground object.
    #[must_use]
    pub fn with_object(mut self, object: ForegroundObject) -> Self {
        self.objects.push(object);
        self
    }

    /// The configured noise standard deviation.
    #[must_use]
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Renders frame `t` of `seq` with the degradations applied.
    /// Deterministic: the same `(seed, t)` yields the same frame.
    #[must_use]
    pub fn apply(&self, seq: &TestSequence, t: usize) -> Frame {
        let mut frame = seq.render_frame(t);
        // Foreground objects first (they are part of the "scene").
        for obj in &self.objects {
            for p in frame.dims().bounds().points() {
                if obj.covers(t, p) {
                    let mut px = frame.get(p);
                    px.y = obj.luma;
                    frame.set(p, px);
                }
            }
        }
        if self.noise_sigma > 0.0 {
            let mut rng = XorShift64::new(self.seed ^ (t as u64).wrapping_mul(0x9e37));
            for px in frame.pixels_mut() {
                // Irwin–Hall(3) ≈ normal; variance of sum of 3 U(−1,1) is 1.
                let n: f64 = (0..3).map(|_| rng.uniform(-1.0, 1.0)).sum();
                let v = f64::from(px.y) + n * self.noise_sigma;
                px.y = v.round().clamp(0.0, 255.0) as u8;
            }
        }
        frame
    }

    /// Iterates over all degraded frames of `seq`.
    pub fn frames<'a>(&'a self, seq: &'a TestSequence) -> impl Iterator<Item = Frame> + 'a {
        (0..seq.frame_count()).map(move |t| self.apply(seq, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_core::ops::reduce::LumaStats;

    fn seq() -> TestSequence {
        TestSequence::pisa().scaled(48, 36, 4)
    }

    #[test]
    fn identity_degradation_is_clean_render() {
        let s = seq();
        let d = Degradation::new(1);
        assert_eq!(d.apply(&s, 1), s.render_frame(1));
        assert_eq!(d.noise_sigma(), 0.0);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let s = seq();
        let d = Degradation::new(3).with_noise(4.0);
        let a = d.apply(&s, 2);
        let b = d.apply(&s, 2);
        assert_eq!(a, b, "same seed+frame → same noise");
        let clean = s.render_frame(2);
        let sad = a.luma_sad(&clean).unwrap();
        let mean_dev = sad as f64 / a.pixel_count() as f64;
        assert!(mean_dev > 1.0 && mean_dev < 8.0, "mean |noise| {mean_dev}");
    }

    #[test]
    fn different_frames_get_different_noise() {
        let s = seq();
        let d = Degradation::new(3).with_noise(4.0);
        let n1 = d.apply(&s, 1);
        let n2 = d.apply(&s, 2);
        // Even after subtracting scene motion, the noise fields differ;
        // cheap check: the frames differ more than the clean ones do by
        // at least something.
        assert_ne!(n1, n2);
    }

    #[test]
    fn zero_sigma_adds_no_noise() {
        let s = seq();
        let d = Degradation::new(3).with_noise(0.0);
        assert_eq!(d.apply(&s, 0), s.render_frame(0));
    }

    #[test]
    fn object_paints_a_blob_that_moves() {
        let s = seq();
        let obj = ForegroundObject::walker(10, 18, 4.0, 0.0, 5);
        let d = Degradation::new(1).with_object(obj);
        let f0 = d.apply(&s, 0);
        let f2 = d.apply(&s, 2);
        assert_eq!(f0.get(Point::new(10, 18)).y, 235, "object at start");
        assert_eq!(f2.get(Point::new(18, 18)).y, 235, "object moved +8");
        // Where the object was, the scene is back.
        let clean2 = s.render_frame(2);
        assert_eq!(f2.get(Point::new(4, 18)).y, clean2.get(Point::new(4, 18)).y);
        assert_eq!(obj.centre_at(2), (18.0, 18.0));
    }

    #[test]
    fn object_and_noise_compose() {
        let s = seq();
        let d = Degradation::new(9)
            .with_noise(2.0)
            .with_object(ForegroundObject::walker(24, 18, -2.0, 1.0, 6));
        let f = d.apply(&s, 1);
        let stats = LumaStats::of(&f).unwrap();
        assert!(stats.max >= 230, "bright object present");
        assert_ne!(f, s.render_frame(1));
    }

    #[test]
    fn frames_iterator_covers_sequence() {
        let s = seq();
        let d = Degradation::new(1).with_noise(1.0);
        assert_eq!(d.frames(&s).count(), 4);
    }
}
