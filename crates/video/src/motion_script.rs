//! Camera motion scripts: the ground-truth global motion of a synthetic
//! sequence.
//!
//! A [`CameraPose`] maps frame coordinates into scene (world)
//! coordinates with a similarity transform (pan + zoom + rotation) — the
//! motion family MPEG-7 global motion estimation targets for mosaicing.
//! A [`MotionScript`] composes per-frame increments into absolute poses,
//! so every rendered frame carries exact ground truth to validate the
//! estimator against (something the paper's real clips could not offer).
//!
//! # Examples
//!
//! ```
//! use vip_video::motion_script::{MotionScript, Segment};
//!
//! let script = MotionScript::new(vec![Segment::pan(10, 1.5, 0.0)]);
//! assert_eq!(script.frame_count(), 10);
//! let p = script.pose(5);
//! assert!((p.dx - 7.5).abs() < 1e-9);
//! ```

/// An absolute camera pose: frame → world mapping
/// `world = zoom · R(rot) · p + (dx, dy)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraPose {
    /// Horizontal world offset.
    pub dx: f64,
    /// Vertical world offset.
    pub dy: f64,
    /// Isotropic zoom factor (1 = native scale).
    pub zoom: f64,
    /// Rotation in radians.
    pub rot: f64,
}

impl CameraPose {
    /// The identity pose.
    #[must_use]
    pub const fn identity() -> Self {
        CameraPose {
            dx: 0.0,
            dy: 0.0,
            zoom: 1.0,
            rot: 0.0,
        }
    }

    /// Maps frame coordinates to world coordinates.
    #[must_use]
    pub fn to_world(&self, x: f64, y: f64) -> (f64, f64) {
        let (s, c) = self.rot.sin_cos();
        (
            self.zoom * (c * x - s * y) + self.dx,
            self.zoom * (s * x + c * y) + self.dy,
        )
    }

    /// The affine coefficients `[a0, a1, a2, a3, a4, a5]` of this pose:
    /// `x' = a0 + a1·x + a2·y`, `y' = a3 + a4·x + a5·y`.
    #[must_use]
    pub fn affine(&self) -> [f64; 6] {
        let (s, c) = self.rot.sin_cos();
        [
            self.dx,
            self.zoom * c,
            -self.zoom * s,
            self.dy,
            self.zoom * s,
            self.zoom * c,
        ]
    }

    /// The relative pose taking a point from `self`'s frame into
    /// `next`'s frame — the ground-truth inter-frame motion a global
    /// motion estimator should recover (as a frame→frame mapping:
    /// `p_next = inverse(next) ∘ self (p_self)`).
    #[must_use]
    pub fn relative_to(&self, next: &CameraPose) -> CameraPose {
        // p_world = Z_a R_a p + t_a ; p_next = R_b^-1 (p_world - t_b)/Z_b
        let zoom = self.zoom / next.zoom;
        let rot = self.rot - next.rot;
        let (s, c) = (-next.rot).sin_cos();
        let tx = self.dx - next.dx;
        let ty = self.dy - next.dy;
        CameraPose {
            dx: (c * tx - s * ty) / next.zoom,
            dy: (s * tx + c * ty) / next.zoom,
            zoom,
            rot,
        }
    }
}

impl Default for CameraPose {
    fn default() -> Self {
        CameraPose::identity()
    }
}

/// One constant-rate segment of a motion script.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Frames in the segment.
    pub frames: usize,
    /// Pan per frame, world units.
    pub pan: (f64, f64),
    /// Multiplicative zoom per frame (1 = none).
    pub zoom_rate: f64,
    /// Rotation per frame, radians.
    pub rot_rate: f64,
}

impl Segment {
    /// A pure pan segment.
    #[must_use]
    pub const fn pan(frames: usize, dx: f64, dy: f64) -> Self {
        Segment {
            frames,
            pan: (dx, dy),
            zoom_rate: 1.0,
            rot_rate: 0.0,
        }
    }

    /// A pan + zoom segment.
    #[must_use]
    pub const fn pan_zoom(frames: usize, dx: f64, dy: f64, zoom_rate: f64) -> Self {
        Segment {
            frames,
            pan: (dx, dy),
            zoom_rate,
            rot_rate: 0.0,
        }
    }

    /// A pan + rotation segment.
    #[must_use]
    pub const fn pan_rotate(frames: usize, dx: f64, dy: f64, rot_rate: f64) -> Self {
        Segment {
            frames,
            pan: (dx, dy),
            zoom_rate: 1.0,
            rot_rate,
        }
    }
}

/// A camera motion script: precomputed absolute poses per frame.
#[derive(Debug, Clone, PartialEq)]
pub struct MotionScript {
    poses: Vec<CameraPose>,
}

impl MotionScript {
    /// Builds the script by integrating the segments from the identity
    /// pose. Frame 0 always has the identity pose; a script of `n` total
    /// segment frames yields `n` frames.
    ///
    /// # Panics
    ///
    /// Panics when the segments contain no frames.
    #[must_use]
    pub fn new(segments: Vec<Segment>) -> Self {
        let total: usize = segments.iter().map(|s| s.frames).sum();
        assert!(total > 0, "motion script needs at least one frame");
        let mut poses = Vec::with_capacity(total);
        let mut pose = CameraPose::identity();
        poses.push(pose);
        for seg in &segments {
            for _ in 0..seg.frames {
                if poses.len() == total {
                    break;
                }
                pose.dx += seg.pan.0;
                pose.dy += seg.pan.1;
                pose.zoom *= seg.zoom_rate;
                pose.rot += seg.rot_rate;
                poses.push(pose);
            }
        }
        MotionScript { poses }
    }

    /// Number of frames.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.poses.len()
    }

    /// The absolute pose of frame `t` (clamped to the last frame).
    #[must_use]
    pub fn pose(&self, t: usize) -> CameraPose {
        self.poses[t.min(self.poses.len() - 1)]
    }

    /// Ground-truth relative motion from frame `t` to frame `t+1`.
    #[must_use]
    pub fn ground_truth(&self, t: usize) -> CameraPose {
        self.pose(t).relative_to(&self.pose(t + 1))
    }

    /// Replaces the pose table (crate-internal; used by
    /// [`MotionScript::from_poses`]).
    pub(crate) fn set_poses(&mut self, poses: Vec<CameraPose>) {
        self.poses = poses;
    }

    /// The world-space bounding translation reached by the script —
    /// useful for sizing mosaics.
    #[must_use]
    pub fn max_translation(&self) -> (f64, f64) {
        let mut mx = 0.0f64;
        let mut my = 0.0f64;
        for p in &self.poses {
            mx = mx.max(p.dx.abs());
            my = my.max(p.dy.abs());
        }
        (mx, my)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_pose_maps_identically() {
        let p = CameraPose::identity();
        assert_eq!(p.to_world(3.0, 4.0), (3.0, 4.0));
        let a = p.affine();
        assert_eq!(a, [0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn pan_pose() {
        let p = CameraPose {
            dx: 10.0,
            dy: -5.0,
            zoom: 1.0,
            rot: 0.0,
        };
        assert_eq!(p.to_world(1.0, 2.0), (11.0, -3.0));
    }

    #[test]
    fn zoom_and_rotation() {
        let p = CameraPose {
            dx: 0.0,
            dy: 0.0,
            zoom: 2.0,
            rot: std::f64::consts::FRAC_PI_2,
        };
        let (x, y) = p.to_world(1.0, 0.0);
        assert!((x - 0.0).abs() < 1e-12);
        assert!((y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn affine_agrees_with_to_world() {
        let p = CameraPose {
            dx: 3.0,
            dy: 7.0,
            zoom: 1.3,
            rot: 0.4,
        };
        let a = p.affine();
        for (x, y) in [(0.0, 0.0), (5.0, -2.0), (100.0, 50.0)] {
            let (wx, wy) = p.to_world(x, y);
            let ax = a[0] + a[1] * x + a[2] * y;
            let ay = a[3] + a[4] * x + a[5] * y;
            assert!((wx - ax).abs() < 1e-9);
            assert!((wy - ay).abs() < 1e-9);
        }
    }

    #[test]
    fn relative_pose_roundtrip() {
        // Mapping a point through pose A to world and back through B
        // must equal the relative pose A→B applied directly.
        let a = CameraPose {
            dx: 10.0,
            dy: 5.0,
            zoom: 1.2,
            rot: 0.1,
        };
        let b = CameraPose {
            dx: 12.0,
            dy: 4.0,
            zoom: 1.25,
            rot: 0.15,
        };
        let rel = a.relative_to(&b);
        for (x, y) in [(0.0, 0.0), (30.0, 40.0), (-10.0, 7.0)] {
            let (wx, wy) = a.to_world(x, y);
            // Invert b manually.
            let (s, c) = (-b.rot).sin_cos();
            let px = (c * (wx - b.dx) - s * (wy - b.dy)) / b.zoom;
            let py = (s * (wx - b.dx) + c * (wy - b.dy)) / b.zoom;
            let (rx, ry) = rel.to_world(x, y);
            assert!((px - rx).abs() < 1e-9, "{px} vs {rx}");
            assert!((py - ry).abs() < 1e-9);
        }
    }

    #[test]
    fn script_integration() {
        let script = MotionScript::new(vec![
            Segment::pan(5, 2.0, 0.0),
            Segment::pan_zoom(5, 0.0, 1.0, 1.01),
        ]);
        assert_eq!(script.frame_count(), 10);
        assert_eq!(script.pose(0), CameraPose::identity());
        let p4 = script.pose(4);
        assert!((p4.dx - 8.0).abs() < 1e-12);
        let p9 = script.pose(9);
        assert!((p9.dx - 10.0).abs() < 1e-9);
        assert!(p9.zoom > 1.0);
        // Clamping beyond the end.
        assert_eq!(script.pose(99), script.pose(9));
    }

    #[test]
    fn ground_truth_matches_segment_rates() {
        let script = MotionScript::new(vec![Segment::pan(6, 1.5, -0.5)]);
        let gt = script.ground_truth(2);
        // Pure pan: relative pose is a translation of −pan (the next
        // frame sees the world shifted the other way).
        assert!((gt.dx + 1.5).abs() < 1e-9, "{gt:?}");
        assert!((gt.dy - 0.5).abs() < 1e-9);
        assert!((gt.zoom - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_translation() {
        let script = MotionScript::new(vec![Segment::pan(4, 3.0, 0.0), Segment::pan(4, -5.0, 2.0)]);
        let (mx, my) = script.max_translation();
        assert!(mx >= 12.0 - 1e-9);
        assert!(my >= 8.0 - 1e-9 - 8.0); // dy grows to 8 − … just positive
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_script_panics() {
        let _ = MotionScript::new(vec![]);
    }
}
