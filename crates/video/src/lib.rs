//! # vip-video — synthetic sequences and image I/O
//!
//! Synthetic stand-ins for the MPEG-1 CIF test clips of the DATE 2005
//! AddressEngine paper (Table 3: Singapore, Dome, Pisa, Movie). Each
//! [`sequences::TestSequence`] couples a deterministic procedural scene
//! with a scripted camera motion, so rendered frames carry exact
//! ground-truth global motion — which also lets the reproduction
//! *validate* the motion estimator, something the original clips could
//! not.
//!
//! ## Quick start
//!
//! ```
//! use vip_video::sequences::TestSequence;
//!
//! // A down-scaled "Singapore" for a fast demo.
//! let seq = TestSequence::singapore().scaled(88, 72, 10);
//! let first = seq.render_frame(0);
//! assert_eq!(first.height(), 72);
//! let truth = seq.script().ground_truth(0);
//! assert!(truth.dx.abs() > 0.0, "the camera pans");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod io;
pub mod motion_script;
pub mod rng;
pub mod sequences;
pub mod synth;

pub use degrade::{Degradation, ForegroundObject};
pub use motion_script::{CameraPose, MotionScript, Segment};
pub use sequences::TestSequence;
pub use synth::{Scene, SceneKind};
