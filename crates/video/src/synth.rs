//! Procedural scene textures: the "world" images our synthetic test
//! sequences are filmed from.
//!
//! The paper evaluates on four MPEG-1 CIF clips (Singapore, Dome, Pisa,
//! Movie) that we do not have; each is replaced by a procedurally
//! generated scene with *known* global motion (see
//! [`crate::sequences`]). A scene is an infinite, deterministic texture
//! sampled at real-valued world coordinates, so warped camera views can
//! be rendered at sub-pixel accuracy.
//!
//! # Examples
//!
//! ```
//! use vip_video::synth::{Scene, SceneKind};
//!
//! let scene = Scene::new(SceneKind::Skyline, 7);
//! let (y, _, _) = scene.sample(10.5, 20.25);
//! assert!(y <= 255.0);
//! ```

/// Deterministic 2-D hash → [0, 1) (value-noise lattice points).
fn lattice(seed: u64, xi: i64, yi: i64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((xi as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add((yi as u64).wrapping_mul(0x94d0_49bb_1331_11eb));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// Smooth value noise in [0, 1) at the given scale.
fn value_noise(seed: u64, x: f64, y: f64, scale: f64) -> f64 {
    let sx = x / scale;
    let sy = y / scale;
    let x0 = sx.floor();
    let y0 = sy.floor();
    let tx = smoothstep(sx - x0);
    let ty = smoothstep(sy - y0);
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice(seed, xi, yi);
    let v10 = lattice(seed, xi + 1, yi);
    let v01 = lattice(seed, xi, yi + 1);
    let v11 = lattice(seed, xi + 1, yi + 1);
    let a = v00 + (v10 - v00) * tx;
    let b = v01 + (v11 - v01) * tx;
    a + (b - a) * ty
}

/// Fractal (multi-octave) value noise in [0, 1).
fn fractal_noise(seed: u64, x: f64, y: f64, base_scale: f64, octaves: u32) -> f64 {
    let mut total = 0.0;
    let mut amplitude = 1.0;
    let mut scale = base_scale;
    let mut norm = 0.0;
    for o in 0..octaves {
        total += amplitude * value_noise(seed.wrapping_add(o as u64 * 7919), x, y, scale);
        norm += amplitude;
        amplitude *= 0.5;
        scale *= 0.5;
    }
    total / norm
}

/// The scene family a synthetic sequence is filmed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// City-skyline-like: vertical structures over a gradient sky
    /// (the "Singapore" stand-in).
    Skyline,
    /// Radial dome structure with ribs (the "Dome" stand-in).
    Dome,
    /// Leaning-tower plaza: strong diagonal edges and arcades
    /// (the "Pisa" stand-in).
    Plaza,
    /// High-contrast film-like texture with large objects
    /// (the "Movie" stand-in).
    Film,
}

/// A deterministic, infinite scene texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scene {
    kind: SceneKind,
    seed: u64,
}

impl Scene {
    /// Creates a scene of the given kind and random seed.
    #[must_use]
    pub const fn new(kind: SceneKind, seed: u64) -> Self {
        Scene { kind, seed }
    }

    /// The scene kind.
    #[must_use]
    pub const fn kind(&self) -> SceneKind {
        self.kind
    }

    /// Samples the scene at world coordinates `(x, y)`, returning
    /// `(y, u, v)` in [0, 255].
    #[must_use]
    pub fn sample(&self, x: f64, y: f64) -> (f64, f64, f64) {
        match self.kind {
            SceneKind::Skyline => self.skyline(x, y),
            SceneKind::Dome => self.dome(x, y),
            SceneKind::Plaza => self.plaza(x, y),
            SceneKind::Film => self.film(x, y),
        }
    }

    /// Samples only the luminance channel.
    #[must_use]
    pub fn sample_luma(&self, x: f64, y: f64) -> f64 {
        self.sample(x, y).0
    }

    fn skyline(&self, x: f64, y: f64) -> (f64, f64, f64) {
        // Sky gradient descending into a band of "buildings": tall
        // rectangles whose heights come from hashed columns.
        let sky = (140.0 - y * 0.15).clamp(40.0, 200.0);
        let col = (x / 24.0).floor() as i64;
        let height = 120.0 + 140.0 * lattice(self.seed, col, 0);
        let building = y > height;
        let texture = fractal_noise(self.seed ^ 0xA5, x, y, 16.0, 3);
        if building {
            let facade = 40.0 + 80.0 * texture;
            // Window grid.
            let wx = (x.rem_euclid(24.0) / 6.0).floor();
            let wy = (y.rem_euclid(16.0) / 5.0).floor();
            let lit = lattice(self.seed ^ 0x77, col * 97 + wx as i64, wy as i64) > 0.6;
            let yv = if lit { facade + 90.0 } else { facade };
            (yv.clamp(0.0, 255.0), 118.0, 132.0)
        } else {
            (sky + 20.0 * texture, 140.0, 120.0)
        }
    }

    fn dome(&self, x: f64, y: f64) -> (f64, f64, f64) {
        let cx = 400.0;
        let cy = 300.0;
        let dx = x - cx;
        let dy = y - cy;
        let r = (dx * dx + dy * dy).sqrt();
        let angle = dy.atan2(dx);
        // Radial ribs and concentric rings.
        let ribs = ((angle * 12.0).sin() * 0.5 + 0.5) * 60.0;
        let rings = ((r / 22.0).sin() * 0.5 + 0.5) * 50.0;
        let noise = fractal_noise(self.seed, x, y, 30.0, 3) * 60.0;
        let detail = fractal_noise(self.seed ^ 0xD, x, y, 7.0, 2) * 55.0;
        let base = 150.0 - r * 0.12;
        (
            (base + ribs * 0.6 + rings * 0.6 + noise * 0.4 + detail).clamp(0.0, 255.0),
            124.0,
            136.0,
        )
    }

    fn plaza(&self, x: f64, y: f64) -> (f64, f64, f64) {
        // Diagonal arcade stripes + a leaning high-contrast "tower".
        let diag = ((x * 0.7 + y * 0.7) / 18.0).sin() * 0.5 + 0.5;
        let tower_x = 300.0 + y * 0.08; // the lean
        let in_tower = (x - tower_x).abs() < 40.0 && y < 400.0;
        let noise = fractal_noise(self.seed, x, y, 12.0, 4);
        if in_tower {
            let bands = ((y / 14.0).sin() * 0.5 + 0.5) * 70.0;
            ((170.0 + bands * 0.6 + noise * 30.0).clamp(0.0, 255.0), 120.0, 134.0)
        } else {
            ((60.0 + diag * 90.0 + noise * 50.0).clamp(0.0, 255.0), 130.0, 126.0)
        }
    }

    fn film(&self, x: f64, y: f64) -> (f64, f64, f64) {
        // Large soft blobs over mid-frequency texture: film-like content
        // with big moving masses.
        let blob1 = (-((x - 250.0).powi(2) + (y - 180.0).powi(2)) / 18_000.0).exp();
        let blob2 = (-((x - 520.0).powi(2) + (y - 340.0).powi(2)) / 30_000.0).exp();
        let noise = fractal_noise(self.seed, x, y, 40.0, 4);
        let detail = fractal_noise(self.seed ^ 0x3, x, y, 5.5, 2);
        let yv = 30.0 + 130.0 * (0.55 * blob1 + 0.45 * blob2) + 45.0 * noise + 75.0 * detail;
        (
            yv.clamp(0.0, 255.0),
            120.0 + 16.0 * blob1,
            128.0 + 12.0 * blob2,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KINDS: [SceneKind; 4] = [
        SceneKind::Skyline,
        SceneKind::Dome,
        SceneKind::Plaza,
        SceneKind::Film,
    ];

    #[test]
    fn samples_in_range() {
        for kind in KINDS {
            let scene = Scene::new(kind, 42);
            for i in 0..200 {
                let x = i as f64 * 7.3 - 200.0;
                let y = i as f64 * 3.1 - 100.0;
                let (yv, u, v) = scene.sample(x, y);
                assert!((0.0..=255.0).contains(&yv), "{kind:?} y={yv}");
                assert!((0.0..=255.0).contains(&u));
                assert!((0.0..=255.0).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic() {
        for kind in KINDS {
            let a = Scene::new(kind, 7).sample(123.4, 56.7);
            let b = Scene::new(kind, 7).sample(123.4, 56.7);
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn seed_changes_texture() {
        let a = Scene::new(SceneKind::Film, 1);
        let b = Scene::new(SceneKind::Film, 2);
        let differs = (0..50).any(|i| {
            let x = i as f64 * 13.7;
            a.sample(x, x * 0.7) != b.sample(x, x * 0.7)
        });
        assert!(differs);
    }

    #[test]
    fn scenes_have_texture_variance() {
        // GME needs gradients: each scene must vary spatially.
        for kind in KINDS {
            let scene = Scene::new(kind, 3);
            let mut values = Vec::new();
            for yi in 0..40 {
                for xi in 0..40 {
                    values.push(scene.sample_luma(xi as f64 * 9.0, yi as f64 * 9.0));
                }
            }
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let var =
                values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
            assert!(var > 100.0, "{kind:?} variance {var} too flat for GME");
        }
    }

    #[test]
    fn noise_is_smooth() {
        // Neighbouring samples differ by much less than the full range.
        let scene = Scene::new(SceneKind::Film, 9);
        for i in 0..100 {
            let x = i as f64 * 3.0;
            let a = scene.sample_luma(x, 50.0);
            let b = scene.sample_luma(x + 0.5, 50.0);
            assert!((a - b).abs() < 60.0, "jump of {} at {x}", (a - b).abs());
        }
    }

    #[test]
    fn kind_accessor() {
        assert_eq!(Scene::new(SceneKind::Dome, 0).kind(), SceneKind::Dome);
    }
}
