//! A tiny deterministic PRNG for synthetic-sequence degradation.
//!
//! The workspace builds with no registry access, so `rand` is not
//! available; noise injection only needs a fast, seedable, uniform
//! generator, which xorshift64* provides in a dozen lines. Not
//! cryptographic — statistical quality is plenty for Irwin–Hall noise.
//!
//! # Examples
//!
//! ```
//! use vip_video::rng::XorShift64;
//!
//! let mut a = XorShift64::new(42);
//! let mut b = XorShift64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.uniform(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&u));
//! ```

/// xorshift64* generator (Vigna 2016): 64-bit state, period 2^64 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator. A zero seed (the one fixed point of the
    /// xorshift map) is remapped to a fixed non-zero constant.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = XorShift64 {
            state: if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed },
        };
        // Discard the first output: low-entropy seeds (small integers)
        // otherwise leak directly into the first sample.
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → the full f64 mantissa range.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn zero_seed_is_valid() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn next_f64_in_unit_interval_with_sane_mean() {
        let mut r = XorShift64::new(123);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
            sum += v;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = XorShift64::new(5);
        for _ in 0..1_000 {
            let v = r.uniform(-3.0, 3.0);
            assert!((-3.0..3.0).contains(&v), "{v}");
        }
    }
}
