#!/usr/bin/env bash
# Full offline verification: release build, tests, static verifier and
# clippy with warnings denied. This is exactly what CI runs; run it
# before pushing.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> vip-check (static schedule/hazard verifier + workspace lint)"
cargo run --release -q -p vip-check -- .

echo "==> vipctl bench --quick --check (fast-forward equivalence + regression gate)"
cargo run --release -q -p vip --bin vipctl -- bench --quick --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --all-targets --workspace -- -D warnings

echo "==> OK"
