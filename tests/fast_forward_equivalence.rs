//! Differential tests: event-driven fast-forward vs cycle-stepped
//! simulation.
//!
//! `StepMode::FastForward` claims to be a pure performance optimisation:
//! on every addressing mode and every configuration it must produce
//! **bit-identical** results to `StepMode::CycleStepped` — the output
//! frame, the full [`vip::engine::EngineReport`] (processing statistics
//! including the fig. 5 stage trace, ZBT access counts, timeline), the
//! accumulated [`vip::engine::EngineStats`], the §4.1 schedule instants,
//! and the error verdict for configurations whose eviction gate
//! deadlocks. This sweep asserts exactly that over ~100 xorshift-seeded
//! configurations, run in parallel through `vip-par` — whose own
//! determinism (identical output at 1 and N threads) is asserted along
//! the way.

use vip::check::schedule::instants;
use vip::core::frame::Frame;
use vip::core::geometry::{Dims, Point};
use vip::core::ops::arith::AbsDiff;
use vip::core::ops::filter::BoxBlur;
use vip::core::ops::segment_ops::HomogeneityCriterion;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, EngineError, EngineRun, StepMode};

/// Number of seeded random configurations per differential sweep.
const CONFIGS: u64 = 100;

/// One random detailed configuration, drawn across (and beyond) the
/// legal IIM/OIM/drain range so both clean and deadlocking cases appear.
fn random_case(seed: u64) -> (EngineConfig, Dims, usize) {
    let mut rng = vip::video::rng::XorShift64::new(seed ^ 0x5eed_f0f0);
    let width = 4 + (rng.next_u64() % 29) as usize; // 4..=32
    let height = 4 + (rng.next_u64() % 21) as usize; // 4..=24
    let radius = (rng.next_u64() % 4) as usize; // 0..=3
    let mut config = EngineConfig::prototype_detailed();
    config.iim_lines = 2 + (rng.next_u64() % 9) as usize;
    config.oim_lines = 1 + (rng.next_u64() % 16) as usize;
    config.oim_drain_cycles_per_pixel = 1 + rng.next_u64() % 4;
    config.output_latency_fraction = [0.0, 0.125, 0.25, 0.5][(rng.next_u64() % 4) as usize];
    (config, Dims::new(width, height), radius)
}

fn test_frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8))
}

fn with_mode(base: &EngineConfig, mode: StepMode) -> EngineConfig {
    let mut cfg = base.clone();
    cfg.step_mode = mode;
    cfg
}

/// Runs one intra call in the given step mode; returns the run plus the
/// engine's accumulated stats.
fn intra_in_mode(
    base: &EngineConfig,
    dims: Dims,
    radius: usize,
    trace_limit: usize,
    mode: StepMode,
) -> Result<(EngineRun, vip::engine::EngineStats), EngineError> {
    let mut engine = AddressEngine::new(with_mode(base, mode))?;
    engine.set_trace_limit(trace_limit);
    let op = BoxBlur::with_radius(radius).expect("radius ≤ 4");
    let run = engine.run_intra(&test_frame(dims), &op)?;
    Ok((run, engine.stats()))
}

/// Asserts two same-seed runs are indistinguishable, down to the f64
/// schedule instants (computed from identical inputs, so exactly equal).
fn assert_identical(
    stepped: &(EngineRun, vip::engine::EngineStats),
    fast: &(EngineRun, vip::engine::EngineStats),
    context: &str,
) {
    assert_eq!(stepped.0.output, fast.0.output, "{context}: output pixels diverge");
    assert_eq!(stepped.0.report, fast.0.report, "{context}: reports diverge");
    assert_eq!(stepped.1, fast.1, "{context}: engine stats diverge");
    let si = instants(&stepped.0.report.timeline);
    let fi = instants(&fast.0.report.timeline);
    assert_eq!(si, fi, "{context}: §4.1 schedule instants diverge");
}

/// One seed's verdict, compact enough to compare across thread counts.
fn intra_verdict(seed: u64) -> String {
    let (config, dims, radius) = random_case(seed);
    let stepped = intra_in_mode(&config, dims, radius, 32, StepMode::CycleStepped);
    let fast = intra_in_mode(&config, dims, radius, 32, StepMode::FastForward);
    match (&stepped, &fast) {
        (Ok(s), Ok(f)) => {
            assert_identical(s, f, &format!("seed {seed} {dims:?} r{radius}"));
            let p = s.0.report.processing.as_ref().expect("detailed stats");
            format!(
                "ok cycles={} iim={} oim={} occ={} trace={}",
                p.cycles, p.iim_stalls, p.oim_stalls, p.oim_max_occupancy, p.trace.len()
            )
        }
        (Err(EngineError::PipelineHazard { .. }), Err(EngineError::PipelineHazard { .. })) => {
            "deadlock".to_owned()
        }
        (s, f) => panic!(
            "seed {seed}: verdicts diverge — stepped {:?}, fast {:?}",
            s.as_ref().map(|_| "ok").map_err(ToString::to_string),
            f.as_ref().map(|_| "ok").map_err(ToString::to_string),
        ),
    }
}

#[test]
fn intra_fast_forward_is_bit_identical_across_seeded_configs() {
    let threads = vip::par::default_threads();
    let verdicts = vip::par::map_indexed(CONFIGS as usize, threads, |i| intra_verdict(i as u64));
    let clean = verdicts.iter().filter(|v| v.starts_with("ok")).count();
    let deadlocked = verdicts.iter().filter(|v| *v == "deadlock").count();
    // The sweep must exercise both verdicts to mean anything.
    assert!(clean >= 20, "only {clean} clean configurations out of {CONFIGS}");
    assert!(deadlocked >= 10, "only {deadlocked} deadlocks out of {CONFIGS}");

    // vip-par determinism: the same sweep serially, byte-identical.
    let serial = vip::par::map_indexed(CONFIGS as usize, 1, |i| intra_verdict(i as u64));
    assert_eq!(verdicts, serial, "parallel sweep diverges from serial");
}

#[test]
fn inter_fast_forward_is_bit_identical() {
    for seed in 0..24 {
        let (config, dims, _) = random_case(seed);
        let a = test_frame(dims);
        let b = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 5 + p.y * 3 + 17) % 256) as u8));
        let mut runs = Vec::new();
        for mode in [StepMode::CycleStepped, StepMode::FastForward] {
            let mut engine = AddressEngine::new(with_mode(&config, mode)).expect("valid config");
            engine.set_trace_limit(24);
            let run = engine
                .run_inter(&a, &b, &AbsDiff::luma())
                .unwrap_or_else(|e| panic!("seed {seed} ({mode:?}): {e}"));
            runs.push((run, engine.stats()));
        }
        assert_identical(&runs[0], &runs[1], &format!("inter seed {seed} {dims:?}"));
    }
}

#[test]
fn segment_calls_are_mode_independent() {
    // Segment (and segment-indexed) addressing runs the software path in
    // both step modes — the §5 outlook engine has no cycle-stepped
    // datapath — so the whole report must be identical by construction.
    let dims = Dims::new(24, 18);
    let frame = test_frame(dims);
    let mut reports = Vec::new();
    for mode in [StepMode::CycleStepped, StepMode::FastForward] {
        let mut cfg = EngineConfig::outlook_v2();
        cfg.step_mode = mode;
        let mut engine = AddressEngine::new(cfg).expect("valid config");
        let run = engine
            .run_segment(
                &frame,
                &[Point::new(12, 9)],
                &HomogeneityCriterion::luma(40),
                vip::core::addressing::segment::SegmentOptions::default(),
            )
            .expect("segment call succeeds");
        reports.push((run, engine.stats()));
    }
    assert_eq!(reports[0].0.result.output, reports[1].0.result.output);
    assert_eq!(reports[0].0.result.segment, reports[1].0.result.segment);
    assert_eq!(reports[0].0.report, reports[1].0.report);
    assert_eq!(reports[0].1, reports[1].1);
    assert_eq!(
        instants(&reports[0].0.report.timeline),
        instants(&reports[1].0.report.timeline)
    );
}

#[test]
fn recorder_attaches_force_the_stepped_path_and_stay_identical() {
    // A recorded fast-forward engine silently steps (per-cycle spans need
    // the per-cycle loop) — statistics must still match an unrecorded run.
    let (config, dims, radius) = random_case(3);
    let unrecorded = intra_in_mode(&config, dims, radius, 0, StepMode::FastForward)
        .expect("seed 3 is a clean configuration");

    let mut engine =
        AddressEngine::new(with_mode(&config, StepMode::FastForward)).expect("valid config");
    let session = vip::engine::Session::new();
    engine.set_recorder(session.recorder());
    let op = BoxBlur::with_radius(radius).expect("radius ≤ 4");
    let run = engine.run_intra(&test_frame(dims), &op).expect("recorded run succeeds");
    assert_eq!(run.output, unrecorded.0.output);
    assert_eq!(run.report, unrecorded.0.report);
    assert!(!session.finish().is_empty(), "recorded run must emit spans");
}
