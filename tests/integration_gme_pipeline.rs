//! Cross-crate integration: global motion estimation over synthetic
//! sequences with ground truth, on both backends, including the
//! end-to-end speedup shape of Table 3.

use vip::gme::{EngineBackend, GmeConfig, SequenceRunner, SoftwareBackend};
use vip::video::TestSequence;

/// The estimator tracks the scripted ground truth of every sequence
/// persona (down-scaled for test speed).
#[test]
fn gme_tracks_ground_truth_on_all_sequences() {
    for seq in TestSequence::table3() {
        let small = seq.scaled(88, 72, 6);
        let scale = 352.0 / 88.0; // motion shrinks with the frame
        let runner = SequenceRunner::new(GmeConfig::default());
        let mut backend = SoftwareBackend::new();
        let report = runner.run(small.frames(), &mut backend).unwrap();
        assert_eq!(report.records.len(), 5);

        let mut err_sum = 0.0;
        for rec in &report.records {
            let truth = small.script().ground_truth(rec.index - 1);
            let (edx, edy) = rec.relative.translation_part();
            // Ground-truth poses were scripted at CIF scale; the scaled
            // sequence samples the same world, so translations are the
            // same world units — compare directly.
            let err = ((edx - truth.dx).powi(2) + (edy - truth.dy).powi(2)).sqrt();
            err_sum += err;
            let _ = scale;
        }
        let mean_err = err_sum / report.records.len() as f64;
        assert!(
            mean_err < 1.2,
            "{}: mean translation error {mean_err}",
            seq.name()
        );
    }
}

/// Both backends produce identical motion and identical call tallies —
/// the engine is a drop-in accelerator (§1: full programmability stays
/// on the CPU).
#[test]
fn backends_agree_end_to_end() {
    let seq = TestSequence::movie().scaled(64, 48, 5);
    let runner = SequenceRunner::new(GmeConfig::translational());
    let mut sw = SoftwareBackend::new();
    let mut hw = EngineBackend::prototype();
    let a = runner.run(seq.frames(), &mut sw).unwrap();
    let b = runner.run(seq.frames(), &mut hw).unwrap();
    assert_eq!(a.records.len(), b.records.len());
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.relative, rb.relative, "frame {}", ra.index);
        assert_eq!(ra.absolute, rb.absolute);
    }
    assert_eq!(a.tally.intra, b.tally.intra);
    assert_eq!(a.tally.inter, b.tally.inter);
    assert!(b.backend_seconds > 0.0, "engine accumulates modelled time");
}

/// The call mix is intra-heavy, like Table 3 (≈ 1.4 intra per inter).
#[test]
fn call_mix_shape_matches_table3() {
    let seq = TestSequence::singapore().scaled(88, 72, 8);
    let runner = SequenceRunner::new(GmeConfig::default()).with_mosaic(32.0, 16.0);
    let mut backend = SoftwareBackend::new();
    let report = runner.run(seq.frames(), &mut backend).unwrap();
    let t = report.tally;
    let ratio = t.intra as f64 / t.inter as f64;
    assert!(ratio > 1.0 && ratio < 2.5, "intra:inter = {ratio} ({t})");
}

/// End-to-end speedup shape: the per-call-priced PM software model over
/// the modelled engine time lands in the paper's speedup band (Table 3
/// average ≈ ×5; small frames carry relatively more per-call overhead,
/// so the band is wider here — the exact CIF-scale numbers live in the
/// table3 bench harness).
#[test]
fn speedup_factor_shape() {
    let seq = TestSequence::dome().scaled(88, 72, 5);
    let runner = SequenceRunner::new(GmeConfig::default());
    let mut hw = EngineBackend::prototype();
    let report = runner.run(seq.frames(), &mut hw).unwrap();

    let speedup = report.pm_seconds / report.backend_seconds;
    assert!(
        speedup > 2.5 && speedup < 9.0,
        "speedup {speedup} (pm {}, engine {})",
        report.pm_seconds,
        report.backend_seconds
    );
}

/// The mosaic reconstructs a panorama wider than a single frame.
#[test]
fn mosaic_panorama_grows() {
    let seq = TestSequence::pisa().scaled(64, 48, 6);
    let runner = SequenceRunner::new(GmeConfig::default()).with_mosaic(48.0, 24.0);
    let mut backend = SoftwareBackend::new();
    let report = runner.run(seq.frames(), &mut backend).unwrap();
    let mosaic = report.mosaic.unwrap();
    assert_eq!(mosaic.frames_added(), 6);
    let single_frame_share =
        (64.0 * 48.0) / (mosaic.canvas().pixel_count() as f64);
    assert!(
        mosaic.coverage() > single_frame_share,
        "panorama must exceed one frame: {} vs {}",
        mosaic.coverage(),
        single_frame_share
    );
}

/// Robustness: moderate sensor noise and a small independently moving
/// foreground object must not break the global estimate (the outlier
/// rejection absorbs them).
#[test]
fn gme_robust_to_noise_and_foreground_motion() {
    use vip::video::{Degradation, ForegroundObject};
    let seq = TestSequence::singapore().scaled(88, 72, 6);
    let degraded = Degradation::new(11)
        .with_noise(2.5)
        .with_object(ForegroundObject::walker(20, 30, -2.0, 0.5, 7));
    let runner = SequenceRunner::new(GmeConfig::default());
    let mut backend = SoftwareBackend::new();
    let frames: Vec<_> = degraded.frames(&seq).collect();
    let report = runner.run(frames, &mut backend).unwrap();

    let mut err_sum = 0.0;
    for rec in &report.records {
        let truth = seq.script().ground_truth(rec.index - 1);
        let (edx, edy) = rec.relative.translation_part();
        err_sum += ((edx - truth.dx).powi(2) + (edy - truth.dy).powi(2)).sqrt();
    }
    let mean_err = err_sum / report.records.len() as f64;
    assert!(mean_err < 1.6, "degraded-sequence error {mean_err}");
    // Outlier rejection must have kicked in: inlier fraction below 1.
    let inliers: f64 = report.records.iter().map(|r| r.gme.inlier_fraction).sum::<f64>()
        / report.records.len() as f64;
    assert!(inliers > 0.35 && inliers < 1.0, "inlier fraction {inliers}");
}
