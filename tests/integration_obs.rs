//! Cross-crate observability integration: an instrumented detailed run
//! produces a Perfetto-loadable trace covering every subsystem, the
//! stage-trace events ride the bus in schedule order, and a disabled
//! recorder leaves results and Table 3 numbers untouched.

use vip::core::frame::Frame;
use vip::core::geometry::Dims;
use vip::core::ops::filter::SobelGradient;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, Phase, Recorder, Session, Track};
use vip::gme::{EngineBackend, GmeConfig, SequenceRunner};
use vip::video::TestSequence;

const CIF: Dims = Dims::new(352, 288);

fn cif_frame() -> Frame {
    Frame::from_fn(CIF, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8))
}

/// A CIF intra Sobel call on the detailed engine emits spans on every
/// hardware subsystem, and the Chrome export names each track.
#[test]
fn cif_intra_sobel_trace_covers_all_subsystems() {
    let session = Session::new();
    let mut engine =
        AddressEngine::new(EngineConfig::prototype_detailed()).expect("valid config");
    engine.set_recorder(session.recorder());
    engine
        .run_intra(&cif_frame(), &SobelGradient::new())
        .expect("CIF intra call succeeds");
    let recording = session.finish();

    for track in [
        Track::Engine,
        Track::Pci,
        Track::Dma,
        Track::ZbtBank(0),
        Track::Iim,
        Track::Oim,
        Track::Pu,
        Track::Plc,
    ] {
        assert!(
            !recording.on_track(track).is_empty(),
            "no events on {track:?}"
        );
    }

    let json = recording.to_chrome_json();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\""));
    for name in ["pci", "dma", "zbt.bank0", "iim", "oim", "pu", "plc"] {
        assert!(
            json.contains(&format!("{{\"name\":\"{name}\"}}")),
            "chrome JSON lacks thread_name metadata for `{name}`"
        );
    }
    // Spans (complete events) are present for the hardware path.
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"name\":\"strip_in\""));
    assert!(json.contains("\"name\":\"processing\""));
    assert!(json.contains("\"name\":\"bank_active\""));
}

/// The seven stage-trace kinds appear as instants on the engine track,
/// in schedule order.
#[test]
fn stage_trace_events_ride_the_bus_in_schedule_order() {
    let session = Session::new();
    let mut engine = AddressEngine::new(EngineConfig::prototype()).expect("valid config");
    engine.set_recorder(session.recorder());
    engine
        .run_intra(&cif_frame(), &SobelGradient::new())
        .expect("CIF intra call succeeds");
    let recording = session.finish();

    let instants: Vec<&vip::engine::TraceRecord> = recording
        .on_track(Track::Engine)
        .into_iter()
        .filter(|e| matches!(e.phase, Phase::Instant))
        .collect();
    let names: Vec<&str> = instants.iter().map(|e| e.name).collect();
    // Output DMA overlaps the processing tail on the prototype schedule
    // (results stream out while the OIM drains), so `output_dma_started`
    // lands before `processing_completed`.
    assert_eq!(
        names,
        [
            "call_issued",
            "input_dma_started",
            "input_dma_completed",
            "output_dma_started",
            "processing_completed",
            "output_dma_completed",
            "call_completed",
        ],
        "stage-trace instants missing or out of schedule order"
    );
    assert!(
        instants.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns),
        "instants must be timestamp-sorted"
    );
}

/// A disabled recorder records nothing, and attaching a live recorder
/// does not perturb the modelled numbers that feed Table 3.
#[test]
fn disabled_recorder_is_silent_and_table3_numbers_are_unchanged() {
    // Explicitly disabled recorder: the session buffer stays empty.
    let session = Session::new();
    let mut engine = AddressEngine::new(EngineConfig::prototype()).expect("valid config");
    engine.set_recorder(Recorder::disabled());
    engine
        .run_intra(&cif_frame(), &SobelGradient::new())
        .expect("CIF intra call succeeds");
    assert!(!engine.recorder().is_enabled());
    assert_eq!(session.finish().len(), 0, "disabled recorder leaked events");

    // Same GME run with and without a recorder: identical Table 3 inputs.
    let seq = TestSequence::singapore().scaled(88, 72, 5);

    let runner = SequenceRunner::new(GmeConfig::default());
    let mut plain = EngineBackend::prototype();
    let baseline = runner.run(seq.frames(), &mut plain).expect("gme run");

    let session = Session::new();
    let runner = SequenceRunner::new(GmeConfig::default()).with_recorder(session.recorder());
    let mut observed = EngineBackend::prototype();
    observed.engine_mut().set_recorder(session.recorder());
    let traced = runner.run(seq.frames(), &mut observed).expect("gme run");
    assert!(!session.finish().is_empty(), "recorder captured the run");

    assert_eq!(baseline.frames, traced.frames);
    assert_eq!(baseline.tally, traced.tally);
    assert_eq!(baseline.pm_seconds, traced.pm_seconds);
    assert_eq!(baseline.backend_seconds, traced.backend_seconds);
    assert_eq!(baseline.records.len(), traced.records.len());
    for (a, b) in baseline.records.iter().zip(&traced.records) {
        assert_eq!(a.relative.translation_part(), b.relative.translation_part());
    }
}
