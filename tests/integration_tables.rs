//! Cross-crate integration: the paper's tables reproduce (exactly where
//! analytic, in shape where platform-dependent).

use vip::core::accounting::{AccessModel, CallDescriptor};
use vip::core::geometry::{Dims, ImageFormat};
use vip::core::neighborhood::Connectivity;
use vip::core::pixel::ChannelSet;
use vip::engine::timing::{inter_timeline, intra_timeline};
use vip::engine::{EngineConfig, ResourceEstimate};
use vip::profiling::amdahl::SpeedupBound;
use vip::profiling::instr::CostModel;
use vip::profiling::profile::{segmentation_workload, software_call_seconds};

const CIF: Dims = Dims::new(352, 288);

/// Table 1: device utilisation and timing of the prototype.
#[test]
fn table1_device_utilisation() {
    let e = ResourceEstimate::for_config(&EngineConfig::prototype());
    assert_eq!(e.slices, 564);
    assert_eq!(e.flip_flops, 216);
    assert_eq!(e.lut4, 349);
    assert_eq!(e.iobs, 60);
    assert_eq!(e.brams, 29);
    assert_eq!(e.gclks, 1);
    assert!((e.fmax_mhz - 102.208).abs() < 1e-6);
    assert!(e.fits_device());
    assert!(e.meets_clock(66.0));
}

/// Table 2: all four rows reproduce exactly.
#[test]
fn table2_memory_accesses_exact() {
    let rows = [
        (
            CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y),
            304_128u64,
            202_752u64,
            33.3,
        ),
        (
            CallDescriptor::intra(Connectivity::Con0, ChannelSet::Y, ChannelSet::Y),
            202_752,
            202_752,
            0.0,
        ),
        (
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y),
            405_504,
            202_752,
            50.0,
        ),
        (
            CallDescriptor::intra(Connectivity::Con8, ChannelSet::YUV, ChannelSet::YUV),
            608_256,
            202_752,
            200.0,
        ),
    ];
    for (call, sw, hw, saving) in rows {
        let m = AccessModel::for_call(&call, CIF);
        assert_eq!(m.software_accesses, sw, "{call}");
        assert_eq!(m.hardware_accesses, hw, "{call}");
        assert!(
            (m.paper_saving_percent() - saving).abs() < 0.5,
            "{call}: {} vs {saving}",
            m.paper_saving_percent()
        );
    }
}

/// Table 3 shape, via the timing models at full CIF scale: the engine
/// beats the PM software model by roughly ×4–6 for the GME call mix.
#[test]
fn table3_speedup_shape_from_models() {
    let cfg = EngineConfig::prototype();
    let pm = CostModel::pentium_m_xm();

    // The paper's per-sequence call mixes (Table 3 columns).
    let sequences = [
        ("singapore", 4542u64, 3173u64),
        ("dome", 4931, 3404),
        ("pisa", 9294, 6541),
        ("movie", 4070, 3085),
    ];
    let intra_call = CallDescriptor::intra(Connectivity::Con8, ChannelSet::Y, ChannelSet::Y);
    let inter_call = CallDescriptor::inter(ChannelSet::Y, ChannelSet::Y);
    let t_intra_hw = intra_timeline(CIF, 1, &cfg).total;
    let t_inter_hw = inter_timeline(CIF, &cfg).total;
    let t_intra_sw = software_call_seconds(&intra_call, CIF, &pm);
    let t_inter_sw = software_call_seconds(&inter_call, CIF, &pm);

    let mut speedups = Vec::new();
    for (name, intra, inter) in sequences {
        let sw = intra as f64 * t_intra_sw + inter as f64 * t_inter_sw;
        let hw = intra as f64 * t_intra_hw + inter as f64 * t_inter_hw;
        let s = sw / hw;
        // Paper per-sequence speedups: 4.3 / 4.5 / 5.3 / 5.0.
        assert!(s > 3.2 && s < 7.0, "{name}: speedup {s}");
        speedups.push(s);
        // Sanity: absolute times land in the paper's minutes-vs-tens-of-
        // seconds regime.
        assert!(sw > 100.0 && sw < 900.0, "{name}: sw {sw} s");
        assert!(hw > 20.0 && hw < 200.0, "{name}: hw {hw} s");
    }
    let avg = speedups.iter().sum::<f64>() / speedups.len() as f64;
    assert!((avg - 5.0).abs() < 1.2, "average speedup {avg} (paper: ≈5)");
}

/// Pisa is about twice the work of the other sequences (Table 3).
#[test]
fn table3_pisa_is_twice_the_work() {
    let calls = [4542 + 3173, 4931 + 3404, 9294 + 6541, 4070 + 3085];
    let pisa = calls[2] as f64;
    for (i, &c) in calls.iter().enumerate() {
        if i != 2 {
            let ratio = pisa / c as f64;
            assert!(ratio > 1.8 && ratio < 2.3, "{ratio}");
        }
    }
}

/// §1: the profiling-based speedup bound of ×30.
#[test]
fn x1_speedup_bound_of_thirty() {
    let mix = segmentation_workload(CIF);
    let bound = SpeedupBound::of(&mix, &CostModel::pentium_m_xm());
    assert!(
        bound.ideal_bound > 24.0 && bound.ideal_bound < 38.0,
        "bound {}",
        bound.ideal_bound
    );
}

/// §4.1: non-PCI overhead of special inter ops ≈ 12.5 % of the inbound
/// transfer time; intra overlaps almost completely.
#[test]
fn x2_pci_overhead() {
    let mut cfg = EngineConfig::prototype();
    cfg.interrupt_overhead_cycles = 0;
    let inter = inter_timeline(CIF, &cfg);
    assert!((inter.non_pci_of_input() - 0.125).abs() < 0.02, "{}", inter.non_pci_of_input());
    let intra = intra_timeline(CIF, 1, &cfg);
    assert!(intra.non_pci_of_input() < 0.05, "{}", intra.non_pci_of_input());
}

/// §3.1: the ZBT stores two input and one output image of either format.
#[test]
fn zbt_capacity_claims() {
    let cfg = EngineConfig::prototype();
    assert!(cfg.zbt_bytes() >= 2 * ImageFormat::Cif.bytes() + ImageFormat::Cif.bytes());
    assert!(cfg.zbt_bytes() >= 3 * ImageFormat::Qcif.bytes());
}
