//! Cross-crate integration: the simulated AddressEngine must be
//! bit-exact with the software AddressLib on realistic synthetic video
//! content, and its memory traffic must match the Table 2 model.

use vip::core::addressing::{inter, intra};
use vip::core::geometry::Dims;
use vip::core::ops::arith::{AbsDiff, ChangeMask};
use vip::core::ops::filter::{Binomial3, SobelGradient};
use vip::core::ops::morph::MorphGradient;
use vip::engine::{AddressEngine, EngineConfig};
use vip::video::TestSequence;

/// Every Table 3 sequence, rendered small, processed by both paths.
#[test]
fn engine_matches_software_on_all_sequences() {
    for seq in TestSequence::table3() {
        let small = seq.scaled(48, 32, 2);
        let f0 = small.render_frame(0);
        let f1 = small.render_frame(1);

        let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();

        let hw_sobel = engine.run_intra(&f0, &SobelGradient::new()).unwrap();
        let sw_sobel = intra::run_intra(&f0, &SobelGradient::new()).unwrap();
        assert_eq!(hw_sobel.output, sw_sobel.output, "{} sobel", seq.name());

        let hw_diff = engine.run_inter(&f0, &f1, &AbsDiff::luma()).unwrap();
        let sw_diff = inter::run_inter(&f0, &f1, &AbsDiff::luma()).unwrap();
        assert_eq!(hw_diff.output, sw_diff.output, "{} diff", seq.name());
    }
}

/// A multi-call pipeline (smooth → gradient → change detect) stays
/// bit-exact through the engine end to end.
#[test]
fn chained_calls_bit_exact() {
    let seq = TestSequence::pisa().scaled(40, 40, 2);
    let f0 = seq.render_frame(0);
    let f1 = seq.render_frame(1);

    let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();
    let hw = {
        let s = engine.run_intra(&f0, &Binomial3::new()).unwrap().output;
        let g = engine.run_intra(&s, &MorphGradient::con8()).unwrap().output;
        engine.run_inter(&g, &f1, &ChangeMask::new(30)).unwrap().output
    };
    let sw = {
        let s = intra::run_intra(&f0, &Binomial3::new()).unwrap().output;
        let g = intra::run_intra(&s, &MorphGradient::con8()).unwrap().output;
        inter::run_inter(&g, &f1, &ChangeMask::new(30)).unwrap().output
    };
    assert_eq!(hw, sw);
    assert_eq!(engine.stats().intra_calls, 2);
    assert_eq!(engine.stats().inter_calls, 1);
}

/// The engine's hardware access count over a detailed run equals the
/// analytic Table 2 hardware model, for every call the pipeline makes.
#[test]
fn hardware_traffic_matches_table2_model() {
    let seq = TestSequence::dome().scaled(32, 32, 2);
    let f0 = seq.render_frame(0);
    let f1 = seq.render_frame(1);
    let mut engine = AddressEngine::new(EngineConfig::prototype_detailed()).unwrap();

    let runs = [
        engine.run_intra(&f0, &Binomial3::new()).unwrap(),
        engine.run_intra(&f0, &SobelGradient::new()).unwrap(),
        engine.run_inter(&f0, &f1, &AbsDiff::luma()).unwrap(),
    ];
    for run in &runs {
        assert_eq!(
            run.report.hardware_accesses, run.report.access_model.hardware_accesses,
            "{}",
            run.report.descriptor
        );
        assert_eq!(run.report.hardware_accesses, 2 * 32 * 32);
    }
}

/// CIF-scale analytic calls: the timing shapes §4.1 describes.
#[test]
fn cif_call_timing_shape() {
    let dims = Dims::new(352, 288);
    let seq = TestSequence::singapore();
    assert_eq!(seq.dims(), dims);
    // Render only once (CIF rendering is the slow part in debug builds).
    let f = seq.render_frame(0);
    let mut engine = AddressEngine::new(EngineConfig::prototype()).unwrap();

    let intra_run = engine.run_intra(&f, &SobelGradient::new()).unwrap();
    let inter_run = engine.run_inter(&f, &f, &AbsDiff::luma()).unwrap();

    // Intra ≈ 6 ms, inter ≈ 10 ms at 66 MHz (PCI bound).
    assert!(
        intra_run.report.timeline.total > 0.005 && intra_run.report.timeline.total < 0.008,
        "intra {}",
        intra_run.report.timeline.total
    );
    assert!(
        inter_run.report.timeline.total > 0.009 && inter_run.report.timeline.total < 0.012,
        "inter {}",
        inter_run.report.timeline.total
    );
    // PCI dominates both.
    assert!(intra_run.report.timeline.pci_utilisation() > 0.85);
    assert!(inter_run.report.timeline.pci_utilisation() > 0.85);
    // The special-inter non-PCI overhead ≈ 12.5 % of the inbound time.
    let frac = inter_run.report.timeline.non_pci_of_input();
    assert!((frac - 0.125).abs() < 0.03, "{frac}");
}
