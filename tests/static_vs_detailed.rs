//! Differential tests: the `vip-check` static verifier against the
//! cycle-stepped simulator.
//!
//! The static analyses in `vip-check` claim three things the detailed
//! engine can falsify directly:
//!
//! 1. **IIM deadlock verdicts** — a configuration the static checker
//!    calls deadlock-free must complete a cycle-stepped intra run, and a
//!    configuration it rejects for `occupancy.iim_deadlock` must abort
//!    with [`EngineError::PipelineHazard`] (the cycle bound the deadlock
//!    trips).
//! 2. **OIM occupancy bounds** — the measured `oim_max_occupancy` of
//!    every successful detailed run stays within the static
//!    `oim_occupancy_bound`.
//! 3. **Timeline ordering** — the seven §4.1 instants of every run's
//!    reported [`CallTimeline`] are monotone non-decreasing, in the
//!    order the static schedule checker proves.
//!
//! All of it over ≥100 xorshift-seeded random configurations, so the
//! two models are compared across the configuration space rather than
//! at a handful of hand-picked points. Seeds are independent, so each
//! sweep fans out across the `vip-par` work pool; a panicking seed
//! still fails the test (scoped-thread panics propagate on join).

use vip::check::occupancy::{check_iim, oim_occupancy_bound};
use vip::check::schedule::{instants, timeline_of, INSTANT_LABELS};
use vip::check::{CallKind, Scenario};
use vip::core::frame::Frame;
use vip::core::geometry::Dims;
use vip::core::ops::arith::AbsDiff;
use vip::core::ops::filter::BoxBlur;
use vip::core::pixel::Pixel;
use vip::engine::{AddressEngine, EngineConfig, EngineError, EngineRun};
use vip::video::rng::XorShift64;

/// Number of seeded random configurations per differential sweep.
const CONFIGS: u64 = 120;

/// One random detailed configuration: frame dims, window radius, and
/// IIM/OIM/gate parameters drawn across (and beyond) the legal range.
fn random_case(seed: u64) -> (EngineConfig, Dims, usize) {
    let mut rng = XorShift64::new(seed);
    let width = 4 + (rng.next_u64() % 29) as usize; // 4..=32
    let height = 4 + (rng.next_u64() % 21) as usize; // 4..=24
    let radius = (rng.next_u64() % 4) as usize; // 0..=3
    let mut config = EngineConfig::prototype_detailed();
    // 2..=10 line blocks: straddles the 2r+1 deadlock threshold.
    config.iim_lines = 2 + (rng.next_u64() % 9) as usize;
    config.oim_lines = 1 + (rng.next_u64() % 16) as usize;
    config.oim_drain_cycles_per_pixel = 1 + rng.next_u64() % 3;
    config.output_latency_fraction = [0.0, 0.125, 0.25, 0.5][(rng.next_u64() % 4) as usize];
    (config, Dims::new(width, height), radius)
}

fn test_frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8))
}

fn run_detailed_intra(
    config: &EngineConfig,
    dims: Dims,
    radius: usize,
) -> Result<EngineRun, EngineError> {
    let mut engine = AddressEngine::new(config.clone())?;
    let op = BoxBlur::with_radius(radius).expect("radius ≤ 4");
    engine.run_intra(&test_frame(dims), &op)
}

/// Asserts the run's reported timeline instants are ordered exactly as
/// the static schedule model proves.
fn assert_ordered(run: &EngineRun, context: &str) {
    let t = &run.report.timeline;
    let inst = instants(t);
    for (i, pair) in inst.windows(2).enumerate() {
        assert!(
            pair[1] >= pair[0] - 1e-12 - t.total.abs() * 1e-9,
            "{context}: instant `{}` ({:.9e}) precedes `{}` ({:.9e})",
            INSTANT_LABELS[i + 1],
            pair[1],
            INSTANT_LABELS[i],
            pair[0],
        );
    }
}

#[test]
fn iim_verdicts_match_detailed_simulation() {
    let verdicts = vip::par::map_indexed(CONFIGS as usize, vip::par::default_threads(), |i| {
        let seed = i as u64;
        let (config, dims, radius) = random_case(seed);
        let scenario =
            Scenario::new("seeded", config.clone(), dims, CallKind::Intra { radius });
        let static_deadlock =
            check_iim(&scenario).iter().any(|v| v.check == "occupancy.iim_deadlock");
        let outcome = run_detailed_intra(&config, dims, radius);
        match (static_deadlock, outcome) {
            (false, Ok(run)) => {
                assert_ordered(&run, &format!("seed {seed} ({scenario})"));
                true
            }
            (true, Err(EngineError::PipelineHazard { .. })) => false,
            (false, Err(e)) => {
                panic!("seed {seed}: static says clean but detailed run failed: {e} ({scenario})")
            }
            (true, Ok(_)) => {
                panic!("seed {seed}: static predicts IIM deadlock but detailed run completed ({scenario})")
            }
            (true, Err(e)) => {
                panic!("seed {seed}: expected a PipelineHazard deadlock, got: {e} ({scenario})")
            }
        }
    });
    let clean = verdicts.iter().filter(|ok| **ok).count();
    let deadlocked = verdicts.len() - clean;
    // The sweep must actually exercise both verdicts.
    assert!(clean >= 20, "only {clean} clean configurations out of {CONFIGS}");
    assert!(deadlocked >= 10, "only {deadlocked} deadlocking configurations out of {CONFIGS}");
}

#[test]
fn detailed_oim_occupancy_stays_within_static_bound() {
    let checks = vip::par::map_indexed(CONFIGS as usize, vip::par::default_threads(), |i| {
        let seed = i as u64;
        let (config, dims, radius) = random_case(seed);
        let scenario =
            Scenario::new("seeded", config.clone(), dims, CallKind::Intra { radius });
        if !check_iim(&scenario).is_empty() {
            return false; // deadlock cases covered by the verdict test
        }
        let run = run_detailed_intra(&config, dims, radius)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let stats = run.report.processing.expect("detailed run records stats");
        let bound = oim_occupancy_bound(&scenario);
        assert!(
            (stats.oim_max_occupancy as u64) <= bound,
            "seed {seed}: measured OIM occupancy {} exceeds the static bound {bound} ({scenario})",
            stats.oim_max_occupancy,
        );
        true
    });
    let checked = checks.iter().filter(|ok| **ok).count();
    assert!(checked >= 20, "only {checked} successful runs to bound-check");
}

#[test]
fn detailed_inter_matches_static_bounds_too() {
    vip::par::map_indexed(24, vip::par::default_threads(), |i| {
        let seed = i as u64;
        let (config, dims, _) = random_case(seed);
        let scenario = Scenario::new("seeded", config.clone(), dims, CallKind::Inter);
        let mut engine = AddressEngine::new(config.clone()).expect("valid config");
        let a = test_frame(dims);
        let b = Frame::from_fn(dims, |p| {
            Pixel::from_luma(((p.x * 7 + p.y * 13 + 31) % 256) as u8)
        });
        let run = engine
            .run_inter(&a, &b, &AbsDiff::luma())
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_ordered(&run, &format!("seed {seed} ({scenario})"));
        let stats = run.report.processing.expect("detailed run records stats");
        assert!(
            (stats.oim_max_occupancy as u64) <= oim_occupancy_bound(&scenario),
            "seed {seed}: inter occupancy {} exceeds bound ({scenario})",
            stats.oim_max_occupancy,
        );
    });
}

#[test]
fn static_timeline_is_the_engine_timeline() {
    // `timeline_of` must describe the very timeline an analytic run
    // reports: the static schedule checks then transfer to real runs.
    vip::par::map_indexed(CONFIGS as usize, vip::par::default_threads(), |i| {
        let seed = i as u64;
        let (mut config, dims, radius) = random_case(seed);
        config.fidelity = vip::engine::SimulationFidelity::Analytic;
        let scenario =
            Scenario::new("seeded", config.clone(), dims, CallKind::Intra { radius });
        if !check_iim(&scenario).is_empty() {
            return;
        }
        let run = run_detailed_intra(&config, dims, radius)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let statics = instants(&timeline_of(&scenario));
        let reported = instants(&run.report.timeline);
        for (s, r) in statics.iter().zip(reported.iter()) {
            assert!(
                (s - r).abs() <= 1e-12 + r.abs() * 1e-9,
                "seed {seed}: static instant {s:.12e} ≠ reported {r:.12e} ({scenario})"
            );
        }
    });
}
