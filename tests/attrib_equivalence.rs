//! Differential tests: cycle attribution must be step-mode independent.
//!
//! `vipctl report` reads its stall buckets, per-bank ZBT duty and
//! call-second split from the engine's metrics [`Registry`]. For the
//! report to be trustworthy, the *whole registry* — every counter,
//! gauge and histogram, including the new `attrib.*`, `pu.idle_cycles`
//! and `zbt.bankN.access_words` keys — must be bit-identical between
//! `StepMode::CycleStepped` and `StepMode::FastForward` on the same
//! workload. This sweep asserts exactly that across xorshift-seeded
//! configurations in every addressing mode, and checks the
//! busy/iim/oim/idle buckets partition the cycle count exactly.

use vip::core::accounting::{AccessModel, AddressingMode, CallDescriptor};
use vip::core::frame::Frame;
use vip::core::geometry::{Dims, Point};
use vip::core::neighborhood::Connectivity;
use vip::core::ops::arith::AbsDiff;
use vip::core::ops::filter::BoxBlur;
use vip::core::ops::segment_ops::HomogeneityCriterion;
use vip::core::pixel::{ChannelSet, Pixel};
use vip::engine::report::{keys, record_into};
use vip::engine::{AddressEngine, EngineConfig, EngineError, Registry, StepMode};

/// One random detailed configuration (the `fast_forward_equivalence`
/// distribution: legal and deadlocking IIM/OIM/drain draws both appear).
fn random_case(seed: u64) -> (EngineConfig, Dims, usize) {
    let mut rng = vip::video::rng::XorShift64::new(seed ^ 0x5eed_f0f0);
    let width = 4 + (rng.next_u64() % 29) as usize; // 4..=32
    let height = 4 + (rng.next_u64() % 21) as usize; // 4..=24
    let radius = (rng.next_u64() % 4) as usize; // 0..=3
    let mut config = EngineConfig::prototype_detailed();
    config.iim_lines = 2 + (rng.next_u64() % 9) as usize;
    config.oim_lines = 1 + (rng.next_u64() % 16) as usize;
    config.oim_drain_cycles_per_pixel = 1 + rng.next_u64() % 4;
    config.output_latency_fraction = [0.0, 0.125, 0.25, 0.5][(rng.next_u64() % 4) as usize];
    (config, Dims::new(width, height), radius)
}

fn test_frame(dims: Dims) -> Frame {
    Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 7 + p.y * 13) % 256) as u8))
}

fn with_mode(base: &EngineConfig, mode: StepMode) -> EngineConfig {
    let mut cfg = base.clone();
    cfg.step_mode = mode;
    cfg
}

/// The busy/iim/oim/idle buckets are a mutually exclusive partition of
/// the processing cycles, so they must sum back exactly.
fn assert_partition(registry: &Registry, context: &str) {
    let total = registry.counter(keys::PU_CYCLES);
    let parts = registry.counter(keys::ATTRIB_PU_BUSY_CYCLES)
        + registry.counter(keys::PU_IIM_STALLS)
        + registry.counter(keys::PU_OIM_STALLS)
        + registry.counter(keys::PU_IDLE_CYCLES);
    assert_eq!(total, parts, "{context}: cycle buckets do not partition");
}

/// Runs one intra call and returns the engine's full registry.
fn intra_registry(
    base: &EngineConfig,
    dims: Dims,
    radius: usize,
    mode: StepMode,
) -> Result<Registry, EngineError> {
    let mut engine = AddressEngine::new(with_mode(base, mode))?;
    let op = BoxBlur::with_radius(radius).expect("radius ≤ 4");
    engine.run_intra(&test_frame(dims), &op)?;
    Ok(engine.metrics().clone())
}

#[test]
fn intra_attribution_is_mode_independent_across_seeded_configs() {
    let mut clean = 0;
    for seed in 0..60 {
        let (config, dims, radius) = random_case(seed);
        let stepped = intra_registry(&config, dims, radius, StepMode::CycleStepped);
        let fast = intra_registry(&config, dims, radius, StepMode::FastForward);
        match (stepped, fast) {
            (Ok(s), Ok(f)) => {
                assert_eq!(s, f, "seed {seed} {dims:?} r{radius}: registries diverge");
                assert_partition(&s, &format!("seed {seed}"));
                let banks: u64 = (0..6)
                    .map(|b| s.counter(vip::engine::report::zbt_bank_key(b)))
                    .sum();
                assert!(banks > 0, "seed {seed}: no ZBT bank traffic recorded");
                clean += 1;
            }
            (Err(EngineError::PipelineHazard { .. }), Err(EngineError::PipelineHazard { .. })) => {}
            (s, f) => panic!(
                "seed {seed}: verdicts diverge — stepped {:?}, fast {:?}",
                s.map(|_| "ok").map_err(|e| e.to_string()),
                f.map(|_| "ok").map_err(|e| e.to_string()),
            ),
        }
    }
    assert!(clean >= 15, "only {clean} clean configurations out of 60");
}

#[test]
fn inter_attribution_is_mode_independent() {
    for seed in 0..20 {
        let (config, dims, _) = random_case(seed);
        let a = test_frame(dims);
        let b = Frame::from_fn(dims, |p| Pixel::from_luma(((p.x * 5 + p.y * 3 + 17) % 256) as u8));
        let mut registries = Vec::new();
        for mode in [StepMode::CycleStepped, StepMode::FastForward] {
            let mut engine = AddressEngine::new(with_mode(&config, mode)).expect("valid config");
            engine
                .run_inter(&a, &b, &AbsDiff::luma())
                .unwrap_or_else(|e| panic!("seed {seed} ({mode:?}): {e}"));
            registries.push(engine.metrics().clone());
        }
        assert_eq!(registries[0], registries[1], "inter seed {seed} {dims:?}");
        assert_partition(&registries[0], &format!("inter seed {seed}"));
    }
}

#[test]
fn segment_attribution_is_mode_independent() {
    let dims = Dims::new(24, 18);
    let frame = test_frame(dims);
    let mut registries = Vec::new();
    for mode in [StepMode::CycleStepped, StepMode::FastForward] {
        let mut cfg = EngineConfig::outlook_v2();
        cfg.step_mode = mode;
        let mut engine = AddressEngine::new(cfg).expect("valid config");
        engine
            .run_segment(
                &frame,
                &[Point::new(12, 9)],
                &HomogeneityCriterion::luma(40),
                vip::core::addressing::segment::SegmentOptions::default(),
            )
            .expect("segment call succeeds");
        registries.push(engine.metrics().clone());
    }
    assert_eq!(registries[0], registries[1], "segment registries diverge");
    assert_eq!(registries[0].counter(keys::SEGMENT_CALLS), 1);
}

#[test]
fn segment_indexed_records_attribution_without_a_call_tally() {
    // Segment-indexed addressing has no engine entry point (it is the
    // write-back half of a segment call), but its reports still flow
    // through `record_into`: gauges accumulate while the per-mode call
    // counter stays untouched, identically for any two registries.
    let dims = Dims::new(24, 18);
    let cfg = EngineConfig::outlook_v2();
    let descriptor = CallDescriptor {
        mode: AddressingMode::SegmentIndexed,
        shape: Connectivity::Con4,
        input_channels: ChannelSet::Y,
        output_channels: ChannelSet::ALPHA,
    };
    let report = vip::engine::EngineReport {
        descriptor,
        timeline: vip::engine::timing::intra_timeline(dims, 1, &cfg),
        access_model: AccessModel::for_call(&descriptor, dims),
        hardware_accesses: dims.pixel_count() as u64,
        processing: None,
    };
    let mut a = Registry::new();
    let mut b = Registry::new();
    record_into(&mut a, &report);
    record_into(&mut b, &report);
    assert_eq!(a, b);
    assert_eq!(a.counter(keys::SEGMENT_CALLS), 0, "indexed pass is not a new call");
    assert!(a.gauge(keys::BUSY_SECONDS) > 0.0);
    assert!(a.gauge(keys::ATTRIB_PCI_INPUT_SECONDS) > 0.0);
}
